package workload

import (
	"testing"

	"hpmmap/internal/core"
	"hpmmap/internal/fault"
	"hpmmap/internal/hugetlb"
	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/sim"
	"hpmmap/internal/trace"
	"hpmmap/internal/vma"
)

// tinySpec shrinks a benchmark for fast tests.
func tinySpec(s AppSpec) AppSpec {
	s.FootprintPerRank = 96 << 20
	s.Iterations = 10
	s.ComputePerIter = 50_000_000
	s.AccessesPerIter = 100_000
	s.ChurnPerIter = 4 << 20
	s.HeapChurnPerIter = 64 << 10
	s.SetupSteps = 4
	return s
}

type rig struct {
	eng  *sim.Engine
	node *kernel.Node
	hp   *core.Manager
	mgr  *linuxmm.Manager
}

// newRig builds a node under one of the paper's three configurations.
func newRig(t *testing.T, config string, seed uint64) *rig {
	t.Helper()
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(seed))
	r := &rig{eng: eng, node: node}
	switch config {
	case "thp":
		r.mgr = linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
		node.SetDefaultMM(r.mgr)
	case "hugetlbfs":
		pools, err := hugetlb.Reserve(node.Mem, 12<<30)
		if err != nil {
			t.Fatal(err)
		}
		r.mgr = linuxmm.New(node, linuxmm.ModeHugeTLB, linuxmm.Mode4KOnly, pools)
		node.SetDefaultMM(r.mgr)
	case "hpmmap":
		r.mgr = linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
		node.SetDefaultMM(r.mgr)
		hp, err := core.Install(node, 12<<30)
		if err != nil {
			t.Fatal(err)
		}
		r.hp = hp
	default:
		t.Fatalf("bad config %q", config)
	}
	return r
}

func (r *rig) launcher() Launcher {
	if r.hp != nil {
		return r.hp.Launch
	}
	return func(name string, zone int) (*kernel.Process, error) {
		return r.node.NewProcess(name, false, zone)
	}
}

// runTiny runs a 2-rank tiny app and returns the result.
func runTiny(t *testing.T, config string, spec AppSpec, rec *trace.Recorder) Result {
	t.Helper()
	r := newRig(t, config, 99)
	var res Result
	done := false
	_, err := Start(r.eng, Options{
		Spec: spec,
		Ranks: []RankPlacement{
			{Node: r.node, Core: 0, Launch: r.launcher()},
			{Node: r.node, Core: 6, Launch: r.launcher()},
		},
		Recorder: rec,
	}, func(got Result) { res = got; done = true })
	if err != nil {
		t.Fatal(err)
	}
	for !done && r.eng.Step() {
	}
	if !done {
		t.Fatal("app did not complete")
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

func TestAppCompletesUnderAllManagers(t *testing.T) {
	for _, cfg := range []string{"thp", "hugetlbfs", "hpmmap"} {
		res := runTiny(t, cfg, tinySpec(HPCCG()), nil)
		if res.Runtime == 0 {
			t.Fatalf("%s: zero runtime", cfg)
		}
		for i, rr := range res.Ranks {
			if rr.Runtime == 0 {
				t.Fatalf("%s: rank %d zero runtime", cfg, i)
			}
		}
	}
}

func TestFaultProfilesByManager(t *testing.T) {
	thp := runTiny(t, "thp", tinySpec(MiniMD()), nil)
	ht := runTiny(t, "hugetlbfs", tinySpec(MiniMD()), nil)
	hp := runTiny(t, "hpmmap", tinySpec(MiniMD()), nil)

	tf := thp.Ranks[0].Faults
	hf := ht.Ranks[0].Faults
	pf := hp.Ranks[0].Faults

	// THP: many small faults (heap), some large (arrays).
	if tf.Faults[fault.KindSmall] == 0 || tf.Faults[fault.KindLarge] == 0 {
		t.Fatalf("thp faults: %+v", tf.Faults)
	}
	// HugeTLBfs: slab faults, far fewer small faults than THP.
	if hf.Faults[fault.KindHugeTLBLarge] == 0 {
		t.Fatalf("hugetlbfs faults: %+v", hf.Faults)
	}
	if hf.Faults[fault.KindHugeTLBSmall] >= tf.Faults[fault.KindSmall] {
		t.Fatalf("hugetlbfs small faults %d vs thp %d", hf.Faults[fault.KindHugeTLBSmall], tf.Faults[fault.KindSmall])
	}
	// HPMMAP: structurally zero.
	if pf.TotalFaults() != 0 {
		t.Fatalf("hpmmap faults: %+v", pf.Faults)
	}
}

func TestHPMMAPFastestOnLoadedNode(t *testing.T) {
	// Large enough that THP's 4KB-mapped heap costs real TLB overhead,
	// so the managers separate above run-to-run jitter.
	spec := tinySpec(MiniFE())
	spec.FootprintPerRank = 512 << 20
	spec.Iterations = 20
	spec.ComputePerIter = 200_000_000
	spec.AccessesPerIter = 5_000_000
	run := func(cfg string) sim.Cycles {
		r := newRig(t, cfg, 7)
		b := StartBuild(r.node, KernelBuild(8), 3)
		var res Result
		done := false
		_, err := Start(r.eng, Options{
			Spec: spec,
			Ranks: []RankPlacement{
				{Node: r.node, Core: 0, Launch: r.launcher()},
				{Node: r.node, Core: 6, Launch: r.launcher()},
			},
		}, func(got Result) { res = got; b.Stop(); done = true })
		if err != nil {
			t.Fatal(err)
		}
		for !done && r.eng.Step() {
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Runtime
	}
	thp := run("thp")
	hp := run("hpmmap")
	if hp >= thp {
		t.Fatalf("hpmmap %d not faster than thp %d under load", hp, thp)
	}
}

func TestRecorderCapturesTimeline(t *testing.T) {
	rec := trace.NewRecorder()
	runTiny(t, "thp", tinySpec(HPCCG()), rec)
	if rec.Len() == 0 {
		t.Fatal("recorder empty")
	}
	// Faults must span the run, not cluster at t=0 (churn keeps the
	// fault path active).
	recs := rec.Records()
	first, last := recs[0].At, recs[0].At
	for _, rc := range recs {
		if rc.At < first {
			first = rc.At
		}
		if rc.At > last {
			last = rc.At
		}
	}
	if last-first == 0 {
		t.Fatal("all faults at one instant")
	}
}

func TestBuildRunsAndStops(t *testing.T) {
	r := newRig(t, "thp", 5)
	b := StartBuild(r.node, KernelBuild(4), 11)
	r.eng.RunUntil(sim.Cycles(5 * 2.2e9)) // 5 simulated seconds
	if b.Compiles == 0 {
		t.Fatal("no compiles finished in 5s")
	}
	b.Stop()
	done := b.Compiles
	r.eng.RunUntil(sim.Cycles(10 * 2.2e9))
	// At most the in-flight compiles finish after Stop.
	if b.Compiles > done+uint64(b.spec.Workers) {
		t.Fatalf("build kept compiling after Stop: %d -> %d", done, b.Compiles)
	}
}

func TestBuildCreatesMemoryPressure(t *testing.T) {
	r := newRig(t, "thp", 5)
	StartBuild(r.node, KernelBuild(8), 11)
	r.eng.RunUntil(sim.Cycles(10 * 2.2e9))
	if r.node.PageCachePages(0)+r.node.PageCachePages(1) == 0 {
		t.Fatal("build generated no page cache")
	}
	if r.mgr.LargeFaults == 0 && r.mgr.SmallFaults == 0 {
		t.Fatal("build generated no faults")
	}
}

func TestSpecLookup(t *testing.T) {
	for _, name := range []string{"HPCCG", "CoMD", "miniMD", "miniFE", "LAMMPS"} {
		s, ok := ByName(name)
		if !ok || s.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, s, ok)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("unknown benchmark resolved")
	}
	s := HPCCG().ScaleFootprint(0.5)
	if s.FootprintPerRank != HPCCG().FootprintPerRank/2 {
		t.Fatalf("ScaleFootprint: %d", s.FootprintPerRank)
	}
}

func TestMemoryOverheadShape(t *testing.T) {
	r := newRig(t, "thp", 3)
	p, err := r.node.NewProcess("x", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := HPCCG()
	if got := MemoryOverhead(r.node, p, spec); got != 0 {
		t.Fatalf("overhead with nothing resident: %d", got)
	}
	// All-small residency must cost far more than all-large.
	p.ResidentSmall = 1 << 30
	small := MemoryOverhead(r.node, p, spec)
	p.ResidentSmall = 0
	p.ResidentLarge = 1 << 30
	large := MemoryOverhead(r.node, p, spec)
	if small < 5*large {
		t.Fatalf("4K overhead %d not >> 2M overhead %d", small, large)
	}
	// Remote residency adds cost.
	p.ResidentRemote = 1 << 29
	remote := MemoryOverhead(r.node, p, spec)
	if remote <= large {
		t.Fatal("remote residency did not add overhead")
	}
}

func TestStartValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := Start(eng, Options{}, nil); err == nil {
		t.Fatal("Start with no ranks succeeded")
	}
}

func TestAnalyticsRunsAndStops(t *testing.T) {
	r := newRig(t, "thp", 21)
	spec := VizPipeline()
	spec.SnapshotBytes = 256 << 20
	spec.PeriodCycles = sim.Cycles(1 * 2.2e9)
	spec.ComputePerPass = 200_000_000
	a := StartAnalytics(r.node, spec, 5)
	r.eng.RunUntil(sim.Cycles(10 * 2.2e9))
	if a.Passes == 0 {
		t.Fatal("no analysis passes in 10 simulated seconds")
	}
	if r.node.PageCachePages(0)+r.node.PageCachePages(1) == 0 {
		t.Fatal("analytics produced no output cache")
	}
	a.Stop()
	done := a.Passes
	r.eng.RunUntil(sim.Cycles(20 * 2.2e9))
	if a.Passes > done+uint64(spec.Pipelines) {
		t.Fatalf("analytics kept running after Stop: %d -> %d", done, a.Passes)
	}
}

func TestAnalyticsPulsesDoNotTouchHPMMAPApp(t *testing.T) {
	r := newRig(t, "hpmmap", 23)
	spec := VizPipeline()
	spec.SnapshotBytes = 512 << 20
	StartAnalytics(r.node, spec, 5)
	var res Result
	done := false
	app := tinySpec(HPCCG())
	_, err := Start(r.eng, Options{
		Spec: app,
		Ranks: []RankPlacement{
			{Node: r.node, Core: 0, Launch: r.launcher()},
			{Node: r.node, Core: 6, Launch: r.launcher()},
		},
	}, func(got Result) { res = got; done = true })
	if err != nil {
		t.Fatal(err)
	}
	for !done && r.eng.Step() {
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	for _, rr := range res.Ranks {
		if rr.Faults.TotalFaults() != 0 {
			t.Fatalf("analytics pressure leaked into the HPMMAP app: %+v", rr.Faults)
		}
	}
}

func TestBSPAmplifiesSlowestRank(t *testing.T) {
	// One rank with injected per-iteration delay gates the whole job:
	// iteration time is the max across ranks (noise amplification).
	run := func(delay sim.Cycles) sim.Cycles {
		r := newRig(t, "hpmmap", 31)
		spec := tinySpec(HPCCG())
		var res Result
		done := false
		_, err := Start(r.eng, Options{
			Spec: spec,
			Ranks: []RankPlacement{
				{Node: r.node, Core: 0, Launch: r.launcher()},
				{Node: r.node, Core: 1, Launch: r.launcher()},
				{Node: r.node, Core: 6, Launch: r.launcher()},
				{Node: r.node, Core: 7, Launch: r.launcher()},
			},
			CommDelay: func(iter, rank int) sim.Cycles {
				if rank == 2 {
					return delay
				}
				return 0
			},
		}, func(got Result) { res = got; done = true })
		if err != nil {
			t.Fatal(err)
		}
		for !done && r.eng.Step() {
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		return res.Runtime
	}
	base := run(0)
	noisy := run(20_000_000) // 20M cycles of noise on one rank per iteration
	slowdown := noisy - base
	spec := tinySpec(HPCCG())
	wantMin := sim.Cycles(spec.Iterations-1) * 18_000_000
	if slowdown < wantMin {
		t.Fatalf("one slow rank cost %d cycles total, want >= %d (full amplification)", slowdown, wantMin)
	}
}

func TestWeakScalingRuntimeBands(t *testing.T) {
	// Sanity: at full-scale parameters the five benchmarks land in the
	// paper's runtime bands on an otherwise idle node under HPMMAP.
	if testing.Short() {
		t.Skip("full-scale runs")
	}
	bands := map[string][2]float64{
		"HPCCG":  {50, 130},
		"CoMD":   {200, 360},
		"miniMD": {250, 420},
		"miniFE": {60, 140},
		"LAMMPS": {100, 200},
	}
	for name, band := range bands {
		spec, _ := ByName(name)
		r := newRig(t, "hpmmap", 61)
		var res Result
		done := false
		_, err := Start(r.eng, Options{
			Spec: spec,
			Ranks: []RankPlacement{
				{Node: r.node, Core: 0, Launch: r.launcher()},
				{Node: r.node, Core: 6, Launch: r.launcher()},
			},
		}, func(got Result) { res = got; done = true })
		if err != nil {
			t.Fatal(err)
		}
		for !done && r.eng.Step() {
		}
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		sec := float64(res.Runtime) / 2.2e9
		if sec < band[0] || sec > band[1] {
			t.Errorf("%s runtime %.1fs outside paper band [%.0f, %.0f]", name, sec, band[0], band[1])
		}
	}
}

func TestScaleWork(t *testing.T) {
	base := HPCCG()
	s := base.ScaleWork(2)
	if s.FootprintPerRank != 2*base.FootprintPerRank ||
		s.ComputePerIter != 2*base.ComputePerIter ||
		s.AccessesPerIter != 2*base.AccessesPerIter ||
		s.ChurnPerIter != 2*base.ChurnPerIter ||
		s.SmallChurnPerIter != 2*base.SmallChurnPerIter ||
		s.CommBytesPerIter != 2*base.CommBytesPerIter {
		t.Fatalf("ScaleWork(2) did not scale all terms: %+v", s)
	}
	// Iterations stay fixed: a larger input, not a longer run.
	if s.Iterations != base.Iterations {
		t.Fatal("ScaleWork changed the iteration count")
	}
}

func TestMlockAllKeepsHPMMAPLarge(t *testing.T) {
	// The paper's §II-B pitfall does not apply to HPMMAP: its memory is
	// unswappable by construction. (The facade exposes this; here we
	// check the underlying invariant that HPMMAP residency stays large.)
	r := newRig(t, "hpmmap", 41)
	p, err := r.hp.Launch("pin", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.node.Mmap(p, 64<<20, rw, vma.KindAnon); err != nil {
		t.Fatal(err)
	}
	if p.LargeFraction() != 1 {
		t.Fatal("hpmmap residency not fully large")
	}
}
