package workload

import (
	"fmt"

	"hpmmap/internal/kernel"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

// AnalyticsSpec parameterizes an in-situ analytics consumer: the
// commodity-side workload of the paper's motivating scenario ("in-situ
// application architectures ... running HPC applications in a
// consolidated environment"). Every period it ingests a snapshot of
// simulation output into freshly allocated buffers, crunches it with
// bandwidth-heavy compute, writes results to the page cache, and frees
// the snapshot — a pulsed memory load, unlike the kernel build's steady
// churn.
type AnalyticsSpec struct {
	// SnapshotBytes ingested per analysis pass.
	SnapshotBytes uint64
	// PeriodCycles between passes (start to start).
	PeriodCycles sim.Cycles
	// ComputePerPass is the CPU work of one pass.
	ComputePerPass sim.Cycles
	// OutputBytes written to the page cache per pass.
	OutputBytes uint64
	// Pipelines is the number of concurrent analysis tasks.
	Pipelines int
	// BandwidthWeight per running pipeline (analytics streams hard).
	BandwidthWeight float64
}

// VizPipeline returns a visualization-style consumer calibrated for the
// 2.2GHz testbed: a 1.5GB snapshot every ~4 seconds, heavily
// bandwidth-bound.
func VizPipeline() AnalyticsSpec {
	return AnalyticsSpec{
		SnapshotBytes:   1536 << 20,
		PeriodCycles:    sim.Cycles(4 * 2.2e9),
		ComputePerPass:  2_600_000_000,
		OutputBytes:     64 << 20,
		Pipelines:       2,
		BandwidthWeight: 0.8,
	}
}

// Analytics is a running in-situ consumer.
type Analytics struct {
	node *kernel.Node
	spec AnalyticsSpec
	rand *sim.Rand

	stopped bool

	// Statistics.
	Passes   uint64
	Failures uint64
}

// StartAnalytics launches the consumer's pipelines on the node.
func StartAnalytics(node *kernel.Node, spec AnalyticsSpec, seed uint64) *Analytics {
	a := &Analytics{node: node, spec: spec, rand: sim.NewRand(seed)}
	if a.spec.Pipelines <= 0 {
		a.spec.Pipelines = 1
	}
	for i := 0; i < a.spec.Pipelines; i++ {
		i := i
		node.Engine().Schedule(sim.Cycles(a.rand.Uint64n(uint64(spec.PeriodCycles)+1)), func() {
			a.pass(i)
		})
	}
	return a
}

// Stop halts the consumer after in-flight passes complete.
func (a *Analytics) Stop() { a.stopped = true }

// pass runs one ingest-analyze-emit cycle.
func (a *Analytics) pass(id int) {
	if a.stopped {
		return
	}
	start := a.node.Now()
	zone := id % a.node.Config().NumaZones
	p, err := a.node.NewProcess(fmt.Sprintf("viz.%d", id), true, zone)
	if err != nil {
		a.Failures++
		a.reschedule(id, start)
		return
	}
	t := a.node.NewTask(p, -1, a.spec.BandwidthWeight)

	var stall sim.Cycles
	size := uint64(a.rand.Jitter(sim.Cycles(a.spec.SnapshotBytes), 0.15))
	addr, c, err := a.node.Mmap(p, size, rw, vma.KindAnon)
	if err == nil {
		stall += c
		if st, terr := a.node.TouchRange(p, addr, size); terr == nil {
			stall += st.Total()
		}
	}
	cpu := a.rand.Jitter(a.spec.ComputePerPass, 0.2)
	// Analyze in slices so the floating task migrates off busy cores.
	const slices = 4
	var step func(left int, carry sim.Cycles)
	step = func(left int, carry sim.Cycles) {
		if left == 0 {
			a.node.PageCacheAdd(zone, a.spec.OutputBytes)
			a.Passes++
			t.Finish()
			a.node.Exit(p)
			a.reschedule(id, start)
			return
		}
		a.node.Run(t, cpu/slices, carry, func(sim.Cycles) { step(left-1, 0) })
	}
	step(slices, stall)
}

// reschedule arms the next pass one period after the previous start.
func (a *Analytics) reschedule(id int, prevStart sim.Cycles) {
	if a.stopped {
		return
	}
	next := prevStart + a.rand.Jitter(a.spec.PeriodCycles, 0.1)
	now := a.node.Now()
	delay := sim.Cycles(1)
	if next > now {
		delay = next - now
	}
	a.node.Engine().Schedule(delay, func() { a.pass(id) })
}
