package workload

import (
	"math"

	"hpmmap/internal/kernel"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
)

// MemoryOverhead computes the per-iteration cost of the memory system
// beyond the fault path: TLB misses weighted by the process's current
// page-size mix, page-walk costs under bandwidth contention, and the
// NUMA-remote access penalty. This is where large pages pay off — and
// where a process whose THP coverage collapsed under fragmentation pays.
func MemoryOverhead(node *kernel.Node, p *kernel.Process, spec AppSpec) sim.Cycles {
	cfg := node.Config()
	load := node.LoadFor(p)

	footprint := p.ResidentBytes()
	if footprint == 0 {
		return 0
	}
	largeFrac := p.LargeFraction()

	// Effective locality rises with page size: a 2MB page absorbs the
	// spatial locality of 512 consecutive small pages. The sqrt scaling
	// is a standard working-set approximation.
	loc4k := spec.Locality
	loc2m := 1 - (1-spec.Locality)*math.Sqrt(4096.0/float64(pgtable.Page2M.Bytes()))

	mr4k := cfg.TLB.MissRate(footprint, pgtable.Page4K, loc4k)
	mr2m := cfg.TLB.MissRate(footprint, pgtable.Page2M, loc2m)

	// Page-walk cost: walk levels that miss the paging-structure caches
	// go to DRAM, slower under bandwidth contention.
	memLat := cfg.MemLatency * (1 + 0.8*load.BandwidthLoad)
	walk4k := 4 * cfg.WalkCacheFactor * memLat
	walk2m := 3 * cfg.WalkCacheFactor * memLat

	perAccess := (1-largeFrac)*mr4k*walk4k + largeFrac*mr2m*walk2m
	tlb := float64(spec.AccessesPerIter) * perAccess

	// NUMA: remote accesses add ~60% latency on the memory-bound part of
	// the iteration.
	numa := float64(spec.ComputePerIter) * spec.MemBoundFactor * 0.6 * p.RemoteFraction()

	// Bandwidth contention stretches the memory-bound fraction of the
	// compute itself.
	bw := float64(spec.ComputePerIter) * spec.MemBoundFactor * 0.45 * load.BandwidthLoad

	return sim.Cycles(tlb + numa + bw)
}
