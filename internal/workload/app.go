package workload

import (
	"fmt"

	"hpmmap/internal/kernel"
	"hpmmap/internal/metrics"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/trace"
	"hpmmap/internal/vma"
)

const rw = pgtable.ProtRead | pgtable.ProtWrite

// Launcher creates the process for one rank. Plain Linux ranks use
// node.NewProcess; HPMMAP ranks use the registration launch tool.
type Launcher func(name string, preferredZone int) (*kernel.Process, error)

// RankPlacement pins one rank to a node and core.
type RankPlacement struct {
	Node   *kernel.Node
	Core   int
	Launch Launcher
}

// Options configures an application run.
type Options struct {
	Spec  AppSpec
	Ranks []RankPlacement
	// CommDelay, when non-nil, returns per-iteration communication time
	// for a rank (the cluster layer computes network costs; single-node
	// runs use shared memory and leave it nil).
	CommDelay func(iter, rank int) sim.Cycles
	// Recorder, when non-nil, captures rank 0's faults.
	Recorder *trace.Recorder
	// Metrics, when non-nil, receives BSP barrier statistics
	// (bsp_barriers_total once per completed barrier, and
	// bsp_barrier_wait_cycles: each rank's wait from arrival to release).
	// Nil leaves the barrier path uninstrumented.
	Metrics *metrics.Registry
	// Tracer, when non-nil, receives one Chrome duration event per rank
	// per iteration (thread id = the rank's PID) and names the rank
	// threads. Nil disables tracing.
	Tracer *metrics.ChromeTracer
	// Attribution, when non-nil, installs one timeline.Account per rank
	// (threaded to every charge site via Process.Account) and records a
	// critical-path decomposition at every barrier release. With a Tracer
	// also attached, each non-balanced barrier emits an instant event on
	// the straggler's thread naming the dominant cause. Nil disables
	// attribution entirely.
	Attribution *timeline.Attribution
}

// RankResult reports one rank's execution.
type RankResult struct {
	Runtime sim.Cycles
	Faults  kernel.TouchStats
}

// Result reports a completed application run.
type Result struct {
	// Runtime is job completion time: the slowest rank.
	Runtime sim.Cycles
	Ranks   []RankResult
	Err     error
}

// App is a running application.
type App struct {
	opts  Options
	eng   *sim.Engine
	ranks []*rankState
	start sim.Cycles

	barrierCount int
	barrierGen   int
	waiting      []func()
	waitingAt    []sim.Cycles // arrival time of each waiter, for barrier wait metrics
	waitingRank  []int        // rank index of each waiter, in arrival order (attribution)

	// Metric push handles; nil when Options.Metrics is nil.
	barriers    *metrics.Counter
	barrierWait *metrics.Histogram

	done   int
	result Result
	onDone func(Result)
	failed bool
}

// rankState is one rank's execution state.
type rankState struct {
	app  *App
	idx  int
	node *kernel.Node
	p    *kernel.Process
	t    *kernel.Task

	bigRegions []regionRef
	heapBase   pgtable.VirtAddr
	heapLen    uint64
	churnAddr  pgtable.VirtAddr
	churnLen   uint64
	smallAddr  pgtable.VirtAddr
	smallLen   uint64

	setupStep int
	iter      int
	iterStart sim.Cycles // engine time the current iteration began (tracing)

	stall sim.Cycles // accumulated fault/syscall time for the next segment
}

type regionRef struct {
	addr    pgtable.VirtAddr
	size    uint64
	touched uint64
}

// Start launches the application. onDone fires when the last rank exits.
func Start(eng *sim.Engine, opts Options, onDone func(Result)) (*App, error) {
	if len(opts.Ranks) == 0 {
		return nil, fmt.Errorf("workload: no ranks")
	}
	if opts.Spec.SetupSteps <= 0 {
		opts.Spec.SetupSteps = 1
	}
	a := &App{opts: opts, eng: eng, onDone: onDone, start: eng.Now()}
	a.barriers = opts.Metrics.Counter(metrics.BSPBarriersTotal)
	a.barrierWait = opts.Metrics.Histogram(metrics.BSPBarrierWaitCycles)
	for i, pl := range opts.Ranks {
		r := &rankState{app: a, idx: i, node: pl.Node}
		p, err := pl.Launch(fmt.Sprintf("%s.%d", opts.Spec.Name, i), pl.Node.ZoneOfCore(pl.Core))
		if err != nil {
			return nil, fmt.Errorf("workload: launch rank %d: %w", i, err)
		}
		r.p = p
		if i == 0 && opts.Recorder != nil {
			p.Recorder = opts.Recorder
		}
		// Rank returns nil when attribution is off or the rank is out of
		// range; a nil Account makes every downstream charge a no-op.
		p.Account = opts.Attribution.Rank(i)
		r.t = pl.Node.NewTask(p, pl.Core, opts.Spec.BandwidthWeight)
		opts.Tracer.SetThreadName(p.PID, fmt.Sprintf("rank%d", i))
		a.ranks = append(a.ranks, r)
		a.result.Ranks = append(a.result.Ranks, RankResult{})
	}
	for _, r := range a.ranks {
		r := r
		eng.Schedule(0, func() { r.begin() })
	}
	return a, nil
}

// Result returns the final result; valid after onDone fired.
func (a *App) Result() Result { return a.result }

// fail aborts the run.
func (a *App) fail(err error) {
	if a.failed {
		return
	}
	a.failed = true
	a.result.Err = err
	a.finish()
}

func (a *App) finish() {
	if a.onDone != nil {
		cb := a.onDone
		a.onDone = nil
		cb(a.result)
	}
}

// barrier blocks rank r until all ranks arrive, then releases everyone.
func (a *App) barrier(r *rankState, fn func()) {
	a.waiting = append(a.waiting, fn)
	a.waitingAt = append(a.waitingAt, a.eng.Now())
	a.waitingRank = append(a.waitingRank, r.idx)
	a.barrierCount++
	if a.barrierCount < len(a.ranks)-a.done {
		return
	}
	ws := a.waiting
	now := a.eng.Now()
	if a.barrierWait != nil {
		// The last arrival releases the barrier: each waiter's wait is
		// the gap between its arrival and now.
		for _, at := range a.waitingAt {
			a.barrierWait.Observe(uint64(now - at))
		}
		a.barriers.Inc()
	}
	if attr := a.opts.Attribution; attr != nil {
		rec := attr.RecordBarrier(now, a.waitingRank, a.waitingAt)
		if tr := a.opts.Tracer; tr != nil && rec.Lateness > 0 {
			name := "straggler:(balanced)"
			if dom, ok := rec.DominantCause(); ok {
				name = "straggler:" + dom.String()
			}
			tr.Instant(a.ranks[rec.Straggler].p.PID, "bsp", name, uint64(now))
		}
	}
	a.waiting = nil
	a.waitingAt = a.waitingAt[:0]
	a.waitingRank = a.waitingRank[:0]
	a.barrierCount = 0
	a.barrierGen++
	for _, w := range ws {
		a.eng.Schedule(0, w)
	}
}

// --- rank state machine ----------------------------------------------------

// begin allocates the address space: stack, big arrays (mmap), and the
// initial heap, then enters the setup-touch loop.
func (r *rankState) begin() {
	spec := r.app.opts.Spec
	node := r.node
	// Stack.
	st, err := node.TouchStack(r.p, spec.StackBytes)
	if err != nil {
		r.app.fail(err)
		return
	}
	r.stall += st.Total()

	// Big arrays: mmap everything up front (demand-paged managers charge
	// almost nothing here; HPMMAP performs its eager on-request backing).
	bigTotal := uint64(float64(spec.FootprintPerRank) * (1 - spec.SmallFraction))
	for got := uint64(0); got < bigTotal; {
		sz := spec.AllocChunk
		if bigTotal-got < sz {
			sz = bigTotal - got
		}
		addr, c, err := node.Mmap(r.p, sz, rw, vma.KindAnon)
		if err != nil {
			r.app.fail(err)
			return
		}
		r.stall += c
		r.bigRegions = append(r.bigRegions, regionRef{addr: addr, size: sz})
		got += sz
	}
	// MPI shared-memory segments with same-node peers (file-backed).
	if spec.SharedPerPeer > 0 {
		peers := 0
		for _, pl := range r.app.opts.Ranks {
			if pl.Node == r.node {
				peers++
			}
		}
		if peers > 1 {
			shm := spec.SharedPerPeer * uint64(peers-1)
			addr, c, err := node.Mmap(r.p, shm, rw, vma.KindFile)
			if err != nil {
				r.app.fail(err)
				return
			}
			r.stall += c
			st, err := node.TouchRange(r.p, addr, shm)
			if err != nil {
				r.app.fail(err)
				return
			}
			r.stall += st.Total()
		}
	}

	// Heap base.
	b, c, err := node.Brk(r.p, 0)
	if err != nil {
		r.app.fail(err)
		return
	}
	r.stall += c
	r.heapBase = b
	r.setupStep = 0
	r.setup()
}

// setup touches 1/SetupSteps of the footprint per segment, interleaved
// with initialization compute.
func (r *rankState) setup() {
	spec := r.app.opts.Spec
	if r.setupStep >= spec.SetupSteps {
		r.iter = 0
		r.app.barrier(r, func() { r.iterate() })
		return
	}
	r.setupStep++

	// Touch the next slice of the big arrays.
	bigTotal := uint64(0)
	for _, reg := range r.bigRegions {
		bigTotal += reg.size
	}
	target := bigTotal * uint64(r.setupStep) / uint64(spec.SetupSteps)
	cum := uint64(0)
	for i := range r.bigRegions {
		reg := &r.bigRegions[i]
		regTarget := target - cum
		if regTarget > reg.size {
			regTarget = reg.size
		}
		if regTarget > reg.touched {
			st, err := r.node.TouchRange(r.p, reg.addr, regTarget)
			if err != nil {
				r.app.fail(err)
				return
			}
			r.stall += st.Total()
			reg.touched = regTarget
		}
		cum += reg.size
		if cum >= target {
			break
		}
	}

	// Grow the heap by this step's share of the small allocations, in
	// glibc-sized brk increments, touching as we go.
	smallTotal := uint64(float64(spec.FootprintPerRank) * spec.SmallFraction)
	heapTarget := smallTotal * uint64(r.setupStep) / uint64(spec.SetupSteps)
	if err := r.growHeap(heapTarget); err != nil {
		r.app.fail(err)
		return
	}

	// Initialization compute: a fraction of an iteration per step.
	cpu := sim.Cycles(uint64(spec.ComputePerIter) / uint64(spec.SetupSteps) / 2)
	stall := r.stall
	r.stall = 0
	r.node.Run(r.t, cpu, stall, func(el sim.Cycles) {
		r.chargeSched(el, cpu, stall)
		r.setup()
	})
}

// chargeSched attributes the scheduler-inflicted share of one Run segment
// — elapsed time beyond the rank's own cpu work and already-attributed
// stall (CPU fair-sharing with co-runners plus context switches) — to the
// sched cause. No-op without an account.
func (r *rankState) chargeSched(elapsed, cpu, stall sim.Cycles) {
	if elapsed > cpu+stall {
		r.p.Account.Charge(timeline.CauseSched, elapsed-cpu-stall)
	}
}

// growHeap extends the heap to target bytes in BrkStep increments.
func (r *rankState) growHeap(target uint64) error {
	spec := r.app.opts.Spec
	for r.heapLen < target {
		step := spec.BrkStep
		if target-r.heapLen < step {
			step = target - r.heapLen
		}
		_, c, err := r.node.Brk(r.p, r.heapBase+pgtable.VirtAddr(r.heapLen+step))
		if err != nil {
			return err
		}
		r.stall += c
		st, err := r.node.TouchRange(r.p, r.heapBase+pgtable.VirtAddr(r.heapLen), step)
		if err != nil {
			return err
		}
		r.stall += st.Total()
		r.heapLen += step
	}
	return nil
}

// iterate runs one bulk-synchronous iteration.
func (r *rankState) iterate() {
	spec := r.app.opts.Spec
	if r.iter >= spec.Iterations {
		r.complete()
		return
	}
	r.iter++
	r.iterStart = r.app.eng.Now()

	// Work-buffer churn: drop last iteration's buffer, map and touch a
	// fresh one — the ongoing allocation activity of Figures 4 and 5.
	if spec.ChurnPerIter > 0 {
		if r.churnAddr != 0 {
			c, err := r.node.Munmap(r.p, r.churnAddr, r.churnLen)
			if err != nil {
				r.app.fail(err)
				return
			}
			r.stall += c
		}
		addr, c, err := r.node.Mmap(r.p, spec.ChurnPerIter, rw, vma.KindAnon)
		if err != nil {
			r.app.fail(err)
			return
		}
		r.stall += c
		r.churnAddr, r.churnLen = addr, spec.ChurnPerIter
		st, err := r.node.TouchRange(r.p, addr, spec.ChurnPerIter)
		if err != nil {
			r.app.fail(err)
			return
		}
		r.stall += st.Total()
	}
	// Small-buffer churn: a sub-2MB scratch buffer remapped every
	// iteration (4KB-mapped under the Linux managers).
	if spec.SmallChurnPerIter > 0 {
		if r.smallAddr != 0 {
			c, err := r.node.Munmap(r.p, r.smallAddr, r.smallLen)
			if err != nil {
				r.app.fail(err)
				return
			}
			r.stall += c
		}
		addr, c, err := r.node.Mmap(r.p, spec.SmallChurnPerIter, rw, vma.KindAnon)
		if err != nil {
			r.app.fail(err)
			return
		}
		r.stall += c
		r.smallAddr, r.smallLen = addr, spec.SmallChurnPerIter
		st, err := r.node.TouchRange(r.p, addr, spec.SmallChurnPerIter)
		if err != nil {
			r.app.fail(err)
			return
		}
		r.stall += st.Total()
	}
	// Heap churn: small temporary allocations push the heap tail.
	if spec.HeapChurnPerIter > 0 {
		if err := r.growHeap(r.heapLen + spec.HeapChurnPerIter); err != nil {
			r.app.fail(err)
			return
		}
	}

	cpu := spec.ComputePerIter + MemoryOverhead(r.node, r.p, spec)
	stall := r.stall
	r.stall = 0
	// Run the iteration in sub-segments so the fair-share sample tracks
	// transient co-runners instead of charging a whole iteration at the
	// instantaneous share.
	const chunks = 4
	var step func(left int, carry sim.Cycles)
	step = func(left int, carry sim.Cycles) {
		if left == 0 {
			end := func() {
				r.traceIter()
				r.app.barrier(r, func() { r.iterate() })
			}
			if d := r.commDelay(); d > 0 {
				r.node.Sleep(r.t, d, end)
				return
			}
			end()
			return
		}
		chunkCarry := carry
		r.node.Run(r.t, cpu/chunks, chunkCarry, func(el sim.Cycles) {
			r.chargeSched(el, cpu/chunks, chunkCarry)
			step(left-1, 0)
		})
	}
	step(chunks, stall)
}

// traceIter emits the just-finished iteration (compute + communication,
// up to the barrier arrival) as a Chrome duration event on the rank's
// thread. No-op without a tracer.
func (r *rankState) traceIter() {
	tr := r.app.opts.Tracer
	if tr == nil {
		return
	}
	now := r.app.eng.Now()
	tr.Complete(r.p.PID, "app", "iter", uint64(r.iterStart), uint64(now-r.iterStart))
}

func (r *rankState) commDelay() sim.Cycles {
	if r.app.opts.CommDelay == nil {
		return 0
	}
	return r.app.opts.CommDelay(r.iter, r.idx)
}

// complete records the rank result; the last rank finishes the app.
func (r *rankState) complete() {
	a := r.app
	a.result.Ranks[r.idx] = RankResult{
		Runtime: a.eng.Now() - a.start,
		Faults:  r.p.Faults,
	}
	if rt := a.eng.Now() - a.start; rt > a.result.Runtime {
		a.result.Runtime = rt
	}
	r.t.Finish()
	r.node.Exit(r.p)
	a.done++
	if a.done == len(a.ranks) && !a.failed {
		a.finish()
	}
}
