package cluster

import (
	"testing"

	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/sim"
	"hpmmap/internal/workload"
)

func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	eng := sim.NewEngine()
	c, err := New(eng, n, GigE(), 1, func(i int) *kernel.Node {
		node := kernel.NewNode(kernel.SandiaXeon(), eng, sim.NewRand(uint64(i)+1))
		node.SetDefaultMM(linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil))
		return node
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, 0, GigE(), 1, nil); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := New(eng, 1, GigE(), 1, func(int) *kernel.Node { return nil }); err == nil {
		t.Fatal("nil node accepted")
	}
}

func TestBlockPlacement(t *testing.T) {
	p, err := BlockPlacement(8, 4, []int{0, 1, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != 2 {
		t.Fatalf("nodes %d", p.NumNodes())
	}
	if p.NodeOf[0] != 0 || p.NodeOf[4] != 1 || p.NodeOf[7] != 1 {
		t.Fatalf("node mapping %v", p.NodeOf)
	}
	if p.CoreOf[0] != 0 || p.CoreOf[3] != 5 || p.CoreOf[5] != 1 {
		t.Fatalf("core mapping %v", p.CoreOf)
	}
	if _, err := BlockPlacement(8, 4, []int{0, 1}); err == nil {
		t.Fatal("insufficient cores accepted")
	}
}

func TestCommDelaySingleNodeIsFree(t *testing.T) {
	c := newTestCluster(t, 1)
	p, _ := BlockPlacement(4, 4, []int{0, 1, 4, 5})
	delay := c.CommDelay(workload.HPCCG(), p)
	for r := 0; r < 4; r++ {
		if d := delay(0, r); d != 0 {
			t.Fatalf("single-node rank %d comm delay %d", r, d)
		}
	}
}

func TestCommDelayCrossNode(t *testing.T) {
	c := newTestCluster(t, 2)
	p, _ := BlockPlacement(8, 4, []int{0, 1, 4, 5})
	delay := c.CommDelay(workload.HPCCG(), p)
	// Rank 3 (node 0) talks to rank 4 (node 1): crosses the wire.
	edge := delay(0, 3)
	if edge == 0 {
		t.Fatal("cross-node exchange free")
	}
	// Rank 1's neighbours are on the same node: only collectives remain.
	inner := delay(0, 1)
	if inner >= edge {
		t.Fatalf("interior rank (%d) pays as much as edge rank (%d)", inner, edge)
	}
	// A 2MB halo at a shared gigabit NIC is tens of milliseconds.
	hz := c.Nodes[0].Config().ClockHz
	sec := float64(edge) / hz
	if sec < 1e-3 || sec > 0.3 {
		t.Fatalf("edge comm %.4fs out of the 1GbE ballpark", sec)
	}
}

func TestCommDelayGrowsWithNodes(t *testing.T) {
	c2 := newTestCluster(t, 2)
	c8 := newTestCluster(t, 8)
	p2, _ := BlockPlacement(8, 4, []int{0, 1, 4, 5})
	p8, _ := BlockPlacement(32, 4, []int{0, 1, 4, 5})
	// Collectives cost more at 8 nodes than 2 (more tree stages).
	var sum2, sum8 sim.Cycles
	for i := 0; i < 50; i++ {
		sum2 += c2.CommDelay(workload.HPCCG(), p2)(i, 3)
		sum8 += c8.CommDelay(workload.HPCCG(), p8)(i, 3)
	}
	if sum8 <= sum2 {
		t.Fatalf("8-node comm %d not above 2-node %d", sum8, sum2)
	}
}

func TestPlacements(t *testing.T) {
	c := newTestCluster(t, 2)
	p, _ := BlockPlacement(8, 4, []int{0, 1, 4, 5})
	pls := c.Placements(p, func(n int) workload.Launcher {
		node := c.Nodes[n]
		return func(name string, zone int) (*kernel.Process, error) {
			return node.NewProcess(name, false, zone)
		}
	})
	if len(pls) != 8 {
		t.Fatalf("%d placements", len(pls))
	}
	if pls[0].Node != c.Nodes[0] || pls[7].Node != c.Nodes[1] {
		t.Fatal("placement node mapping wrong")
	}
	proc, err := pls[5].Launch("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Nodes[1].Process(proc.PID) != proc {
		t.Fatal("launcher created process on wrong node")
	}
}
