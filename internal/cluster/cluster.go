// Package cluster models the multi-node layer of the scaling study: a set
// of nodes joined by a gigabit-Ethernet network, and the communication
// cost model for bulk-synchronous MPI applications (nearest-neighbour
// halo exchange plus collectives). The network is the paper's 1GbE
// testbed constraint — the reason the benchmarks "do not scale
// particularly well from 1 to 2 nodes".
package cluster

import (
	"fmt"

	"hpmmap/internal/kernel"
	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
	"hpmmap/internal/timeline"
	"hpmmap/internal/workload"
)

// NetworkConfig describes the interconnect.
type NetworkConfig struct {
	// BandwidthBytesPerSec is the NIC line rate (shared by all ranks on a
	// node).
	BandwidthBytesPerSec float64
	// LatencySec is the per-message one-way latency (switch + stack).
	LatencySec float64
	// Jitter is the relative variation applied to each exchange.
	Jitter float64
}

// GigE returns the testbed's 1Gbit Ethernet.
func GigE() NetworkConfig {
	return NetworkConfig{
		BandwidthBytesPerSec: 125e6, // 1 Gbit/s
		LatencySec:           60e-6, // ~60us one-way through the switch
		Jitter:               0.15,
	}
}

// Cluster is a set of nodes sharing one simulation engine.
type Cluster struct {
	Eng   *sim.Engine
	Nodes []*kernel.Node
	Net   NetworkConfig
	rand  *sim.Rand

	// Metric push handles, nil until Observe is called.
	exchanges  *metrics.Counter
	commCycles *metrics.Histogram

	// accounts, when non-nil, resolves a rank to its attribution account;
	// installed by SetAccounts, read by the CommDelay closure after the
	// jitter draw (so attribution never perturbs the PRNG stream).
	accounts func(rank int) *timeline.Account
}

// SetAccounts installs the per-rank attribution lookup used by CommDelay
// to split each exchange into its nominal cost (CauseComm) and the signed
// jitter delta (CauseCommJitter). A nil lookup (the default) disables
// communication attribution.
func (c *Cluster) SetAccounts(fn func(rank int) *timeline.Account) { c.accounts = fn }

// Observe instruments the cluster's communication model: every off-node
// exchange increments cluster_exchanges_total and records its jittered
// cost (the value actually charged to the rank) in cluster_comm_cycles.
// The handles are read after the jitter draw, so instrumentation never
// perturbs the deterministic PRNG stream. No-op on a nil registry; call
// once, before the application runs.
func (c *Cluster) Observe(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	c.exchanges = reg.Counter(metrics.ClusterExchangesTotal)
	c.commCycles = reg.Histogram(metrics.ClusterCommCycles)
}

// New builds a cluster of n nodes created by mkNode (which must attach
// each node to the shared engine).
func New(eng *sim.Engine, n int, net NetworkConfig, seed uint64, mkNode func(i int) *kernel.Node) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node")
	}
	c := &Cluster{Eng: eng, Net: net, rand: sim.NewRand(seed)}
	for i := 0; i < n; i++ {
		node := mkNode(i)
		if node == nil {
			return nil, fmt.Errorf("cluster: mkNode(%d) returned nil", i)
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// Placement maps ranks onto nodes/cores: rank i runs on node i/perNode,
// core list supplied per node.
type Placement struct {
	NodeOf []int // rank -> node index
	CoreOf []int // rank -> core id on that node
}

// BlockPlacement fills nodes in order, ranksPerNode ranks each, using the
// given cores on every node.
func BlockPlacement(ranks, ranksPerNode int, cores []int) (Placement, error) {
	if ranksPerNode <= 0 || len(cores) < ranksPerNode {
		return Placement{}, fmt.Errorf("cluster: need %d cores per node, have %d", ranksPerNode, len(cores))
	}
	p := Placement{NodeOf: make([]int, ranks), CoreOf: make([]int, ranks)}
	for r := 0; r < ranks; r++ {
		p.NodeOf[r] = r / ranksPerNode
		p.CoreOf[r] = cores[r%ranksPerNode]
	}
	return p, nil
}

// NumNodes returns how many nodes the placement uses.
func (p Placement) NumNodes() int {
	max := 0
	for _, n := range p.NodeOf {
		if n > max {
			max = n
		}
	}
	return max + 1
}

// CommDelay returns the per-iteration communication cost function for an
// application with the given spec and placement: a 1-D nearest-neighbour
// halo exchange plus a tree allreduce. All times are cycles at the node's
// clock.
func (c *Cluster) CommDelay(spec workload.AppSpec, p Placement) func(iter, rank int) sim.Cycles {
	nodesUsed := p.NumNodes()
	hz := c.Nodes[0].Config().ClockHz
	// Count the ranks per node that cross the wire, to share the NIC.
	crossing := make([]int, nodesUsed)
	ranks := len(p.NodeOf)
	for r := 0; r < ranks; r++ {
		for _, nb := range []int{r - 1, r + 1} {
			if nb >= 0 && nb < ranks && p.NodeOf[nb] != p.NodeOf[r] {
				crossing[p.NodeOf[r]]++
				break
			}
		}
	}
	return func(iter, rank int) sim.Cycles {
		if nodesUsed == 1 {
			// Shared-memory exchange: microseconds, absorbed in compute.
			return 0
		}
		var sec float64
		// Halo exchange with both neighbours.
		for _, nb := range []int{rank - 1, rank + 1} {
			if nb < 0 || nb >= ranks {
				continue
			}
			if p.NodeOf[nb] == p.NodeOf[rank] {
				continue // on-node neighbour: shared memory
			}
			share := crossing[p.NodeOf[rank]]
			if share < 1 {
				share = 1
			}
			bw := c.Net.BandwidthBytesPerSec / float64(share)
			sec += c.Net.LatencySec + float64(spec.CommBytesPerIter)/bw
		}
		// Collectives: log2(nodes) stages of small messages.
		stages := 0
		for n := nodesUsed; n > 1; n >>= 1 {
			stages++
		}
		sec += spec.CollectiveFactor * float64(stages) * 2 * c.Net.LatencySec
		nominal := sim.Cycles(sec * hz)
		// Observe after the jitter draw: instrumentation must never
		// perturb the PRNG stream.
		cycles := c.rand.Jitter(nominal, c.Net.Jitter)
		c.exchanges.Inc()
		c.commCycles.Observe(uint64(cycles))
		if c.accounts != nil {
			acct := c.accounts(rank)
			acct.Charge(timeline.CauseComm, nominal)
			acct.ChargeSigned(timeline.CauseCommJitter, int64(cycles)-int64(nominal))
		}
		return cycles
	}
}

// Placements converts a Placement into workload rank placements using the
// given launcher factory (one launcher per node, since HPMMAP modules are
// per node).
func (c *Cluster) Placements(p Placement, launcher func(node int) workload.Launcher) []workload.RankPlacement {
	out := make([]workload.RankPlacement, len(p.NodeOf))
	for r := range p.NodeOf {
		out[r] = workload.RankPlacement{
			Node:   c.Nodes[p.NodeOf[r]],
			Core:   p.CoreOf[r],
			Launch: launcher(p.NodeOf[r]),
		}
	}
	return out
}
