package buddy

import "testing"

func BenchmarkAllocFree2M(b *testing.B) {
	a := New(2 << 20)
	if err := a.AddRegion(0, 12<<30); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr, size, err := a.Alloc(2 << 20)
		if err != nil {
			b.Fatal(err)
		}
		a.Free(addr, size)
	}
}

func BenchmarkAllocChurn(b *testing.B) {
	// Mixed sizes with a working set, the HPMMAP syscall pattern.
	a := New(2 << 20)
	if err := a.AddRegion(0, 2<<30); err != nil {
		b.Fatal(err)
	}
	type blk struct{ addr, size uint64 }
	var live []blk
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(live) > 256 {
			v := live[0]
			live = live[1:]
			a.Free(v.addr, v.size)
		}
		addr, size, err := a.Alloc(uint64(2+(i%8)*2) << 20)
		if err != nil {
			for _, v := range live {
				a.Free(v.addr, v.size)
			}
			live = live[:0]
			continue
		}
		live = append(live, blk{addr, size})
	}
}
