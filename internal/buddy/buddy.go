// Package buddy implements a binary buddy allocator in the style of the
// Kitten lightweight kernel. HPMMAP uses it to manage memory that has been
// hot-removed (offlined) from Linux: the allocator is seeded with the
// offlined extents and hands out power-of-two blocks, 2MB large pages
// being the fundamental unit of allocation.
package buddy

import (
	"fmt"
	"math/bits"

	"hpmmap/internal/invariant"
)

// Allocator manages one or more physically contiguous regions with a
// binary buddy scheme. The zero value is not usable; call New.
type Allocator struct {
	minShift uint // log2 of the minimum block size
	regions  []*region

	total uint64 // managed bytes
	free  uint64 // free bytes

	// Statistics.
	Allocs, Frees, Splits, Merges, Failures uint64
}

// region is a contiguous managed range [base, base+size).
type region struct {
	base, size uint64
	shift      uint // the allocator's minShift, cached for slot arithmetic
	// freeBit[o] marks which base-relative offsets hold a free block of
	// size minBlock<<o, indexed by slot off>>(shift+o). Offsets (not
	// absolute addresses) keep the buddy XOR arithmetic independent of
	// where the extent sits in physical memory; the dense slot index
	// replaces a map[uint64]struct{} so membership tests do no hashing
	// (ISSUE 6 hot-path contract).
	freeBit [][]bool
	// count[o] is the number of free blocks at exactly order o.
	count []int
	// order of the largest block this region can hold.
	maxOrder int
	// stack[o] gives deterministic LIFO pop order per order; stale
	// entries (removed out-of-band by coalescing) are skipped lazily, and
	// that skip order is part of the pinned allocation sequence.
	stack [][]uint64
}

func (r *region) slot(order int, off uint64) uint64 { return off >> (r.shift + uint(order)) }

func (r *region) isFree(order int, off uint64) bool {
	return r.freeBit[order][r.slot(order, off)]
}

// New returns an allocator whose minimum block size is minBlock (a power
// of two; HPMMAP uses 2MB).
func New(minBlock uint64) *Allocator {
	if minBlock == 0 || minBlock&(minBlock-1) != 0 {
		panic(fmt.Sprintf("buddy: min block %d not a power of two", minBlock))
	}
	return &Allocator{minShift: uint(bits.TrailingZeros64(minBlock))}
}

// MinBlock returns the minimum allocation size.
func (a *Allocator) MinBlock() uint64 { return 1 << a.minShift }

// TotalBytes returns the managed pool size.
func (a *Allocator) TotalBytes() uint64 { return a.total }

// FreeBytes returns the currently free pool size.
func (a *Allocator) FreeBytes() uint64 { return a.free }

// AddRegion donates [base, base+size) to the allocator. base and size must
// be multiples of the minimum block size. Contiguous with an existing
// region or not, the range is managed as its own buddy arena.
func (a *Allocator) AddRegion(base, size uint64) error {
	min := a.MinBlock()
	if size == 0 {
		return nil
	}
	if base%min != 0 || size%min != 0 {
		return fmt.Errorf("buddy: region [%#x,+%#x) not aligned to min block %#x", base, size, min)
	}
	for _, r := range a.regions {
		if base < r.base+r.size && r.base < base+size {
			return fmt.Errorf("buddy: region [%#x,+%#x) overlaps existing [%#x,+%#x)", base, size, r.base, r.size)
		}
	}
	blocks := size >> a.minShift
	maxOrder := bits.Len64(blocks) - 1
	r := &region{base: base, size: size, shift: a.minShift, maxOrder: maxOrder}
	r.freeBit = make([][]bool, maxOrder+1)
	r.count = make([]int, maxOrder+1)
	r.stack = make([][]uint64, maxOrder+1)
	for o := range r.freeBit {
		r.freeBit[o] = make([]bool, blocks>>uint(o))
	}
	// Seed with the greedy aligned decomposition of the range.
	off := uint64(0)
	for off < size {
		o := maxOrder
		for o > 0 {
			bs := min << uint(o)
			if off%bs == 0 && off+bs <= size {
				break
			}
			o--
		}
		r.push(o, off)
		off += min << uint(o)
	}
	a.regions = append(a.regions, r)
	a.total += size
	a.free += size
	return nil
}

//detsim:hotpath
func (r *region) push(order int, off uint64) {
	s := r.slot(order, off)
	if r.freeBit[order][s] {
		// Simulated-state violation: a block entered the free pool twice
		// (double free in the HPMMAP path).
		invariant.Failf("pool_double_push", "buddy",
			"offset %#x order %d pushed onto the free pool it is already on", off, order)
	}
	r.freeBit[order][s] = true
	r.count[order]++
	//detsim:allow pooled capacity: the per-order free stack refills capacity released by pop; growth is bounded by region size and amortised (DESIGN.md §10)
	r.stack[order] = append(r.stack[order], off)
}

// pop returns a free block of exactly the given order.
//
//detsim:hotpath
func (r *region) pop(order int) (uint64, bool) {
	s := r.stack[order]
	// The stack may contain offsets that were removed out-of-band during
	// coalescing; skip them lazily.
	for len(s) > 0 {
		off := s[len(s)-1]
		s = s[:len(s)-1]
		if slot := r.slot(order, off); r.freeBit[order][slot] {
			r.stack[order] = s
			r.freeBit[order][slot] = false
			r.count[order]--
			return off, true
		}
	}
	r.stack[order] = s
	return 0, false
}

// take removes a specific free block, returning false if absent.
//
//detsim:hotpath
func (r *region) take(order int, off uint64) bool {
	s := r.slot(order, off)
	if !r.freeBit[order][s] {
		return false
	}
	r.freeBit[order][s] = false
	r.count[order]--
	return true
}

// orderFor returns the smallest order whose block size fits size bytes.
func (a *Allocator) orderFor(size uint64) int {
	min := a.MinBlock()
	o := 0
	for min<<uint(o) < size {
		o++
	}
	return o
}

// BlockSize returns the actual allocation size for a request of size
// bytes: the request rounded up to the next power-of-two multiple of the
// minimum block.
func (a *Allocator) BlockSize(size uint64) uint64 {
	return a.MinBlock() << uint(a.orderFor(size))
}

// Alloc returns the physical base address of a free block of at least size
// bytes (rounded up to a power-of-two block). The second result is the
// actual block size.
//
//detsim:hotpath
func (a *Allocator) Alloc(size uint64) (uint64, uint64, error) {
	if size == 0 {
		return 0, 0, fmt.Errorf("buddy: Alloc(0)")
	}
	want := a.orderFor(size)
	for _, r := range a.regions {
		if want > r.maxOrder {
			continue
		}
		for o := want; o <= r.maxOrder; o++ {
			off, ok := r.pop(o)
			if !ok {
				continue
			}
			for o > want {
				o--
				a.Splits++
				r.push(o, off+(a.MinBlock()<<uint(o)))
			}
			bs := a.MinBlock() << uint(want)
			a.free -= bs
			a.Allocs++
			return r.base + off, bs, nil
		}
	}
	a.Failures++
	return 0, 0, fmt.Errorf("buddy: out of memory for %d-byte block (free %d)", a.BlockSize(size), a.free)
}

// Free returns a block previously obtained from Alloc. size must be the
// block size Alloc returned.
//
//detsim:hotpath
func (a *Allocator) Free(addr, size uint64) {
	r := a.regionOf(addr)
	if r == nil {
		// Simulated-state violations, all three: the address/size pair
		// being freed cannot be a block this allocator handed out —
		// HPMMAP's bookkeeping diverged from the pool.
		invariant.Failf("free_outside_regions", "buddy",
			"Free(%#x, %#x): address belongs to no managed region", addr, size)
	}
	order := a.orderFor(size)
	if a.MinBlock()<<uint(order) != size {
		invariant.Failf("free_bad_size", "buddy",
			"Free(%#x, %#x): size is not a power-of-two block size (min block %#x)",
			addr, size, a.MinBlock())
	}
	off := addr - r.base
	if off%size != 0 {
		invariant.Failf("free_misaligned", "buddy",
			"Free(%#x) misaligned for size %#x within region [%#x,+%#x)",
			addr, size, r.base, r.size)
	}
	a.Frees++
	a.free += size
	for order < r.maxOrder {
		bs := a.MinBlock() << uint(order)
		buddy := off ^ bs
		if buddy+bs > r.size || !r.take(order, buddy) {
			break
		}
		a.Merges++
		if buddy < off {
			off = buddy
		}
		order++
	}
	r.push(order, off)
}

func (a *Allocator) regionOf(addr uint64) *region {
	for _, r := range a.regions {
		if addr >= r.base && addr < r.base+r.size {
			return r
		}
	}
	return nil
}

// Owns reports whether addr falls inside the managed pool.
func (a *Allocator) Owns(addr uint64) bool { return a.regionOf(addr) != nil }

// LargestFreeBlock returns the size of the largest currently free block.
func (a *Allocator) LargestFreeBlock() uint64 {
	var best uint64
	for _, r := range a.regions {
		for o := r.maxOrder; o >= 0; o-- {
			if r.count[o] > 0 {
				if bs := a.MinBlock() << uint(o); bs > best {
					best = bs
				}
				break
			}
		}
	}
	return best
}

// CheckInvariants validates the allocator's internal consistency. Exported
// for tests and debugging assertions.
func (a *Allocator) CheckInvariants() error {
	var free uint64
	for _, r := range a.regions {
		covered := make(map[uint64]int)
		for o := 0; o <= r.maxOrder; o++ {
			bs := a.MinBlock() << uint(o)
			n := 0
			for slot, set := range r.freeBit[o] {
				if !set {
					continue
				}
				n++
				off := uint64(slot) << (r.shift + uint(o))
				if off%bs != 0 {
					return fmt.Errorf("buddy: free block %#x misaligned for order %d", off, o)
				}
				if off+bs > r.size {
					return fmt.Errorf("buddy: free block %#x order %d exceeds region", off, o)
				}
				for b := uint64(0); b < bs; b += a.MinBlock() {
					if prev, dup := covered[off+b]; dup {
						return fmt.Errorf("buddy: unit %#x free twice (orders %d, %d)", off+b, prev, o)
					}
					covered[off+b] = o
				}
				free += bs
			}
			if n != r.count[o] {
				return fmt.Errorf("buddy: order %d count %d != set bits %d", o, r.count[o], n)
			}
		}
	}
	if free != a.free {
		return fmt.Errorf("buddy: free accounting %d != lists %d", a.free, free)
	}
	return nil
}
