package buddy

import (
	"testing"
	"testing/quick"

	"hpmmap/internal/sim"
)

const mb = 1 << 20

func newPool(t *testing.T, sizeMB uint64) *Allocator {
	t.Helper()
	a := New(2 * mb)
	if err := a.AddRegion(0x1_0000_0000, sizeMB*mb); err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(3MB) did not panic")
		}
	}()
	New(3 * mb)
}

func TestAddRegionAlignment(t *testing.T) {
	a := New(2 * mb)
	if err := a.AddRegion(1*mb, 128*mb); err == nil {
		t.Fatal("misaligned base accepted")
	}
	if err := a.AddRegion(0, 3*mb); err == nil {
		t.Fatal("misaligned size accepted")
	}
	if err := a.AddRegion(0, 0); err != nil {
		t.Fatalf("empty region rejected: %v", err)
	}
}

func TestAddRegionOverlapRejected(t *testing.T) {
	a := New(2 * mb)
	if err := a.AddRegion(0, 128*mb); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRegion(64*mb, 128*mb); err == nil {
		t.Fatal("overlapping region accepted")
	}
	if err := a.AddRegion(128*mb, 128*mb); err != nil {
		t.Fatalf("adjacent region rejected: %v", err)
	}
	if a.TotalBytes() != 256*mb {
		t.Fatalf("total %d", a.TotalBytes())
	}
}

func TestAllocRoundsToBlockSize(t *testing.T) {
	a := newPool(t, 128)
	addr, size, err := a.Alloc(3 * mb)
	if err != nil {
		t.Fatal(err)
	}
	if size != 4*mb {
		t.Fatalf("3MB request got %d-byte block, want 4MB", size)
	}
	if a.FreeBytes() != 124*mb {
		t.Fatalf("free %d", a.FreeBytes())
	}
	a.Free(addr, size)
	if a.FreeBytes() != 128*mb {
		t.Fatalf("free %d after free", a.FreeBytes())
	}
	if a.LargestFreeBlock() != 128*mb {
		t.Fatalf("pool did not re-coalesce: largest %d", a.LargestFreeBlock())
	}
}

func TestAllocZeroFails(t *testing.T) {
	a := newPool(t, 128)
	if _, _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) succeeded")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := newPool(t, 16)
	var blocks []uint64
	for {
		addr, size, err := a.Alloc(2 * mb)
		if err != nil {
			break
		}
		if size != 2*mb {
			t.Fatalf("size %d", size)
		}
		blocks = append(blocks, addr)
	}
	if len(blocks) != 8 {
		t.Fatalf("got %d 2MB blocks from 16MB", len(blocks))
	}
	if a.FreeBytes() != 0 {
		t.Fatalf("free %d after exhaustion", a.FreeBytes())
	}
	if _, _, err := a.Alloc(2 * mb); err == nil {
		t.Fatal("alloc on exhausted pool succeeded")
	}
	if a.Failures == 0 {
		t.Fatal("failure counter not incremented")
	}
	for _, b := range blocks {
		a.Free(b, 2*mb)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if a.LargestFreeBlock() != 16*mb {
		t.Fatalf("largest after full free: %d", a.LargestFreeBlock())
	}
}

func TestAllocSpansRegions(t *testing.T) {
	a := New(2 * mb)
	if err := a.AddRegion(0, 4*mb); err != nil {
		t.Fatal(err)
	}
	if err := a.AddRegion(1<<32, 128*mb); err != nil {
		t.Fatal(err)
	}
	// A 64MB request cannot fit in region 0.
	addr, _, err := a.Alloc(64 * mb)
	if err != nil {
		t.Fatal(err)
	}
	if addr < 1<<32 {
		t.Fatalf("64MB block at %#x, expected in second region", addr)
	}
}

func TestNonPowerOfTwoRegionDecomposition(t *testing.T) {
	// 96MB = 64 + 32: greedy seeding must cover it exactly.
	a := New(2 * mb)
	if err := a.AddRegion(0, 96*mb); err != nil {
		t.Fatal(err)
	}
	if a.FreeBytes() != 96*mb {
		t.Fatalf("free %d", a.FreeBytes())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := a.LargestFreeBlock(); got != 64*mb {
		t.Fatalf("largest %d, want 64MB", got)
	}
	// Allocate it all as 2MB pages and give it all back.
	var blocks []uint64
	for {
		addr, _, err := a.Alloc(2 * mb)
		if err != nil {
			break
		}
		blocks = append(blocks, addr)
	}
	if len(blocks) != 48 {
		t.Fatalf("%d blocks from 96MB", len(blocks))
	}
	for _, b := range blocks {
		a.Free(b, 2*mb)
	}
	if a.FreeBytes() != 96*mb || a.LargestFreeBlock() != 64*mb {
		t.Fatalf("after free: free=%d largest=%d", a.FreeBytes(), a.LargestFreeBlock())
	}
}

func TestFreePanicsOutsidePool(t *testing.T) {
	a := newPool(t, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("Free outside pool did not panic")
		}
	}()
	a.Free(0xdead0000000, 2*mb)
}

func TestFreePanicsOnBadSize(t *testing.T) {
	a := newPool(t, 16)
	addr, size, err := a.Alloc(2 * mb)
	if err != nil {
		t.Fatal(err)
	}
	_ = size
	defer func() {
		if recover() == nil {
			t.Fatal("Free with non-block size did not panic")
		}
	}()
	a.Free(addr, 3*mb)
}

func TestOwns(t *testing.T) {
	a := newPool(t, 16)
	if !a.Owns(0x1_0000_0000) {
		t.Fatal("Owns(base) = false")
	}
	if a.Owns(0) {
		t.Fatal("Owns(0) = true")
	}
}

// Property: random alloc/free sequences conserve bytes, never hand out
// overlapping blocks, and full free restores full coalescing.
func TestBuddyRandomOpsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRand(seed)
		a := New(2 * mb)
		if err := a.AddRegion(0, 256*mb); err != nil {
			t.Log(err)
			return false
		}
		type blk struct{ addr, size uint64 }
		var live []blk
		owned := map[uint64]bool{} // 2MB-unit occupancy
		for op := 0; op < 1500; op++ {
			if len(live) == 0 || r.Bool(0.55) {
				req := uint64(1+r.Intn(32)) * mb
				addr, size, err := a.Alloc(req)
				if err != nil {
					continue
				}
				for u := addr; u < addr+size; u += 2 * mb {
					if owned[u] {
						t.Logf("seed %d: unit %#x double-allocated", seed, u)
						return false
					}
					owned[u] = true
				}
				live = append(live, blk{addr, size})
			} else {
				i := r.Intn(len(live))
				b := live[i]
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				for u := b.addr; u < b.addr+b.size; u += 2 * mb {
					delete(owned, u)
				}
				a.Free(b.addr, b.size)
			}
			var liveBytes uint64
			for _, b := range live {
				liveBytes += b.size
			}
			if liveBytes+a.FreeBytes() != a.TotalBytes() {
				t.Logf("seed %d: conservation violated at op %d", seed, op)
				return false
			}
		}
		if err := a.CheckInvariants(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, b := range live {
			a.Free(b.addr, b.size)
		}
		if a.LargestFreeBlock() != 256*mb {
			t.Logf("seed %d: did not re-coalesce (largest %d)", seed, a.LargestFreeBlock())
			return false
		}
		return a.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestBlockSize(t *testing.T) {
	a := New(2 * mb)
	cases := []struct{ req, want uint64 }{
		{1, 2 * mb},
		{2 * mb, 2 * mb},
		{2*mb + 1, 4 * mb},
		{5 * mb, 8 * mb},
	}
	for _, c := range cases {
		if got := a.BlockSize(c.req); got != c.want {
			t.Fatalf("BlockSize(%d) = %d, want %d", c.req, got, c.want)
		}
	}
}
