package buddy

import "hpmmap/internal/metrics"

// Observe registers this allocator's statistics with the metrics
// registry as pull-mode sources, read at snapshot time: alloc/free/
// split/merge/failure counters, the free-byte gauge, and a
// fragmentation gauge (1 - largest free block / free bytes; 0 when the
// pool is empty or perfectly coalesced). Registering multiple
// allocators (one per NUMA zone) is additive for the counters and the
// free-byte gauge; the fragmentation ratio sums and should be read per
// pool when more than one is registered (see OBSERVABILITY.md).
//
// Observe is a no-op on a nil registry and costs nothing on the
// allocation hot path — the allocator's existing counters are the only
// state touched during Alloc/Free.
func (a *Allocator) Observe(reg *metrics.Registry) {
	reg.CounterFunc(metrics.BuddyAllocsTotal, func() uint64 { return a.Allocs })
	reg.CounterFunc(metrics.BuddyFreesTotal, func() uint64 { return a.Frees })
	reg.CounterFunc(metrics.BuddySplitsTotal, func() uint64 { return a.Splits })
	reg.CounterFunc(metrics.BuddyMergesTotal, func() uint64 { return a.Merges })
	reg.CounterFunc(metrics.BuddyFailuresTotal, func() uint64 { return a.Failures })
	reg.GaugeFunc(metrics.BuddyFreeBytes, func() float64 { return float64(a.free) })
	reg.GaugeFunc(metrics.BuddyFragRatio, func() float64 {
		if a.free == 0 {
			return 0
		}
		return 1 - float64(a.LargestFreeBlock())/float64(a.free)
	})
}
