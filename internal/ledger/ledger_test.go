package ledger

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func meta() Meta {
	return Meta{Model: "test-model", Scale: 0.5, Flags: map[string]string{"exp": "fig7", "runs": "2"}}
}

// drive runs the same 4-cell plan through l, emitting canonical events
// in the order given by perm (simulating completion-order scrambling
// by a worker pool) plus host noise.
func drive(l *Ledger, perm []int, hostNoise bool) {
	l.BeginPlan("fig7", 0xdeadbeef, 4, len(perm))
	for _, i := range perm {
		l.CellStart(i, fmt.Sprintf("cell#%d", i), uint64(1000+i))
		if hostNoise {
			l.CellHost(i, i%2, time.Duration(i+1)*time.Millisecond, uint64(i)*4096)
			if i == 2 {
				l.CellRetry(i, 1, "transient: disk hiccup")
				l.CacheMiss(i)
			} else {
				l.CacheHit(i)
			}
		}
		status, errText := StatusOK, ""
		if i == 1 {
			status, errText = StatusQuarantined, "cell 1: boom"
		}
		l.CellFinish(i, status, errText)
	}
	l.EndPlan()
}

func TestCanonicalProjectionOrderIndependent(t *testing.T) {
	var a, b bytes.Buffer
	la := New(&a, meta())
	drive(la, []int{0, 1, 2, 3}, false)
	if err := la.Close(); err != nil {
		t.Fatal(err)
	}
	lb := New(&b, meta())
	drive(lb, []int{3, 1, 0, 2}, true) // scrambled order + host noise
	if err := lb.Close(); err != nil {
		t.Fatal(err)
	}

	recsA, err := Read(&a)
	if err != nil {
		t.Fatal(err)
	}
	recsB, err := Read(&b)
	if err != nil {
		t.Fatal(err)
	}
	canonA, err := Marshal(Canonical(recsA))
	if err != nil {
		t.Fatal(err)
	}
	canonB, err := Marshal(Canonical(recsB))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(canonA, canonB) {
		t.Fatalf("canonical projection differs across emission orders:\nA:\n%s\nB:\n%s", canonA, canonB)
	}
}

func TestRecordStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	l, err := Open(path, meta())
	if err != nil {
		t.Fatal(err)
	}
	drive(l, []int{2, 0, 3, 1}, true)
	l.CacheCorrupt(3)
	l.BenchRecord(json.RawMessage(`{"cells_per_sec":5.5}`))
	if got := l.CanonicalRecords(); got != 1+8+1 { // manifest + 4x(start+finish) + plan_end
		t.Fatalf("CanonicalRecords = %d, want 10", got)
	}
	if got := l.PlanCount(); got != 1 {
		t.Fatalf("PlanCount = %d, want 1", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Manifest first, host_manifest second.
	if recs[0].T != TypeManifest || recs[0].Plan != "fig7" || recs[0].Cells != 4 {
		t.Fatalf("bad manifest: %+v", recs[0])
	}
	if recs[0].Seed != fmt.Sprintf("%016x", uint64(0xdeadbeef)) {
		t.Fatalf("manifest seed = %q", recs[0].Seed)
	}
	if recs[0].Model != "test-model" || recs[0].Scale != 0.5 || recs[0].Flags["exp"] != "fig7" {
		t.Fatalf("manifest meta not stamped: %+v", recs[0])
	}
	if recs[1].T != TypeHostManifest || recs[1].Workers != 4 || recs[1].Go == "" || recs[1].Start == "" {
		t.Fatalf("bad host_manifest: %+v", recs[1])
	}

	// Canonical cell events sorted by index, start before finish.
	canon := Canonical(recs)
	wantSeq := []struct {
		typ string
		i   int
	}{
		{TypeManifest, 0},
		{TypeCellStart, 0}, {TypeCellFinish, 0},
		{TypeCellStart, 1}, {TypeCellFinish, 1},
		{TypeCellStart, 2}, {TypeCellFinish, 2},
		{TypeCellStart, 3}, {TypeCellFinish, 3},
		{TypePlanEnd, 0},
	}
	if len(canon) != len(wantSeq) {
		t.Fatalf("canonical length = %d, want %d", len(canon), len(wantSeq))
	}
	for k, w := range wantSeq {
		if canon[k].T != w.typ || canon[k].I != w.i {
			t.Fatalf("canon[%d] = {%s i=%d}, want {%s i=%d}", k, canon[k].T, canon[k].I, w.typ, w.i)
		}
	}

	// Statuses and tally.
	var finish1 Record
	for _, r := range canon {
		if r.T == TypeCellFinish && r.I == 1 {
			finish1 = r
		}
	}
	if finish1.Status != StatusQuarantined || finish1.Err != "cell 1: boom" {
		t.Fatalf("cell 1 finish = %+v", finish1)
	}
	end := canon[len(canon)-1]
	if end.OK != 3 || end.Quarantined != 1 || end.Failed != 0 {
		t.Fatalf("plan_end tally = %+v", end)
	}

	// Host records present.
	count := map[string]int{}
	for _, r := range recs {
		count[r.T]++
	}
	if count[TypeCellHost] != 4 || count[TypeCellRetry] != 1 || count[TypeCacheHit] != 3 ||
		count[TypeCacheMiss] != 1 || count[TypeCacheCorrupt] != 1 || count[TypeBench] != 1 {
		t.Fatalf("host record counts: %v", count)
	}
}

func TestNilLedgerIsNoop(t *testing.T) {
	var l *Ledger
	l.BeginPlan("p", 1, 2, 3)
	l.CellStart(0, "x", 1)
	l.CellFinish(0, StatusOK, "")
	l.CellHost(0, 0, time.Second, 1)
	l.CellRetry(0, 1, "e")
	l.CellTimeout(0)
	l.CacheHit(0)
	l.CacheMiss(0)
	l.CacheCorrupt(1)
	l.BenchRecord(json.RawMessage(`{}`))
	l.EndPlan()
	if l.CanonicalRecords() != 0 || l.PlanCount() != 0 {
		t.Fatal("nil ledger reported counts")
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	l := New(&buf, Meta{})
	l.BeginPlan("p", 7, 64, 8)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.CellStart(i, fmt.Sprintf("c%d", i), uint64(i))
			l.CellHost(i, i%8, time.Millisecond, 64)
			l.CellFinish(i, StatusOK, "")
		}(i)
	}
	wg.Wait()
	l.EndPlan()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	canon := Canonical(recs)
	// manifest + 64*2 + plan_end, sorted by index.
	if len(canon) != 130 {
		t.Fatalf("canonical count = %d", len(canon))
	}
	prev := -1
	for _, r := range canon[1 : len(canon)-1] {
		if r.I < prev {
			t.Fatalf("canonical events not sorted: %d after %d", r.I, prev)
		}
		prev = r.I
	}
	if canon[len(canon)-1].OK != 64 {
		t.Fatalf("plan_end ok = %d", canon[len(canon)-1].OK)
	}
}

func TestFirstLine(t *testing.T) {
	if got := FirstLine(nil); got != "" {
		t.Fatalf("FirstLine(nil) = %q", got)
	}
	err := errors.New("panic: boom\ngoroutine 12 [running]:\nmain.main()")
	if got := FirstLine(err); got != "panic: boom" {
		t.Fatalf("FirstLine = %q", got)
	}
	if got := FirstLine(errors.New("single")); got != "single" {
		t.Fatalf("FirstLine = %q", got)
	}
}

func TestWriteErrorSurfacedByClose(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.jsonl")
	l, err := Open(path, Meta{})
	if err != nil {
		t.Fatal(err)
	}
	// Close the file out from under the ledger to force write errors.
	l.f.Close()
	l.BeginPlan("p", 1, 1, 1)
	l.CellStart(0, "c", 1)
	l.CellFinish(0, StatusOK, "")
	l.EndPlan()
	if err := l.Close(); err == nil {
		t.Fatal("Close returned nil after underlying file closed")
	} else if !strings.Contains(err.Error(), "ledger:") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	_, err := Read(strings.NewReader("{\"t\":\"manifest\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("Read error = %v, want line 2 decode failure", err)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.jsonl")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v", err)
	}
}
