// Host-annex writers: the nondeterministic half of the ledger. This
// file is the ONLY place in the package (and in the simulated-state
// tree) allowed to read the wall clock — the detsim wallclock analyzer
// exempts exactly this file, so a time.Now creeping anywhere else in
// the canonical path fails `make lint`. Host records stream in arrival
// order, unbuffered, which is what `hpmmap-ledger watch` tails; none
// of them participate in the byte-identity contract.
package ledger

import (
	"encoding/json"
	"runtime"
	"time"
)

// beginHost writes the host companion of the plan manifest: resolved
// worker count, Go version, wall-clock start. Called by BeginPlan with
// l.mu held.
func (l *Ledger) beginHost(workers int) {
	l.write(Record{
		T: TypeHostManifest, Plan: l.plan, Workers: workers,
		Go: runtime.Version(), Start: time.Now().UTC().Format(time.RFC3339Nano),
	})
}

// CellHost records one cell's host-side cost: which worker ran it, the
// wall time, and the process-wide allocation delta over its execution
// (an attribution, not an isolated measurement, when workers overlap).
func (l *Ledger) CellHost(idx, worker int, wall time.Duration, allocBytes uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{
		T: TypeCellHost, I: idx, Worker: worker,
		WallUS: wall.Microseconds(), AllocBytes: allocBytes,
	})
	l.flushLocked()
}

// CellRetry records one host-transient re-run of a cell. attempt is
// 1-based: the first retry is attempt 1.
func (l *Ledger) CellRetry(idx, attempt int, errText string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{T: TypeCellRetry, I: idx, Attempt: attempt, Err: errText})
	l.flushLocked()
}

// CellTimeout records a cell cancelled by the runner's CellTimeout.
func (l *Ledger) CellTimeout(idx int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{T: TypeCellTimeout, I: idx})
	l.flushLocked()
}

// CacheHit records a result-cache hit for one cell.
func (l *Ledger) CacheHit(idx int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{T: TypeCacheHit, I: idx})
	l.flushLocked()
}

// CacheMiss records a result-cache miss for one cell.
func (l *Ledger) CacheMiss(idx int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{T: TypeCacheMiss, I: idx})
	l.flushLocked()
}

// CacheCorrupt records the invocation's corrupt-cache-entry tally
// (runner.Cache.CorruptCount). Written once at CLI shutdown; skipped
// when zero so clean runs carry no record.
func (l *Ledger) CacheCorrupt(n uint64) {
	if l == nil || n == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{T: TypeCacheCorrupt, Count: n})
	l.flushLocked()
}

// BenchRecord embeds a cmd/hpmmap-perf benchmark record verbatim,
// making BENCH_*.json history queryable through `hpmmap-ledger diff`.
// raw must be a valid JSON document.
func (l *Ledger) BenchRecord(raw json.RawMessage) {
	if l == nil || len(raw) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.write(Record{T: TypeBench, Bench: raw})
	l.flushLocked()
}
