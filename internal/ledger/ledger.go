// Package ledger is the runner's durable run journal: a structured
// JSONL file recording what a plan execution did — the manifest (plan
// name, seeds, scale, model version, flag set), one event per runner
// lifecycle transition (cell start/finish/retry/timeout/quarantine,
// cache hit/miss/corrupt), and per-cell host wall-time and allocation
// deltas. It is the cross-run record the experiment CLIs emit with
// -ledger and cmd/hpmmap-ledger summarises, diffs and tails; ROADMAP
// item 4's multi-process coordinator reads this format instead of
// inventing its own protocol.
//
// The design contract is a strict split between two record classes:
//
//   - The canonical projection (record types in CanonicalTypes:
//     manifest, cell_start, cell_finish, plan_end) carries only
//     deterministic fields — cell indexes, labels, coordinate-derived
//     seeds, statuses, first-line error text. Canonical cell events are
//     buffered during the run and flushed sorted by cell index at
//     EndPlan, so the projection is byte-identical at any worker count
//     and with a cold or warm result cache. Determinism tests pin this
//     half (see Canonical and internal/experiments' ledger tests).
//   - The host annex (everything else: host_manifest, cell_host,
//     cell_retry, cell_timeout, cache_hit/miss/corrupt, bench) carries
//     wall-clock times, worker IDs, allocation deltas and cache
//     traffic. Host records stream live in arrival order — this is
//     what `hpmmap-ledger watch` tails — and are excluded from every
//     byte-identity contract. host.go is the only file of this package
//     allowed to touch the wall clock (enforced by the detsim
//     wallclock analyzer; see ANALYSIS.md).
//
// A nil *Ledger is the valid no-op sink, mirroring the metrics layer:
// every method accepts a nil receiver and does nothing, so the runner
// and the experiment harnesses never test "is a ledger attached"
// beyond passing the handle through.
package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// Record types. The canonical set is listed in CanonicalTypes; any
// other type is host annex.
const (
	// TypeManifest opens a plan: name, base seed, cell count, and the
	// invocation metadata (model version, scale, flag set). Canonical —
	// deliberately excludes the worker count and any timestamps; those
	// live in the host_manifest companion record.
	TypeManifest = "manifest"
	// TypeCellStart records one cell entering execution: index, label,
	// coordinate-derived seed. Canonical.
	TypeCellStart = "cell_start"
	// TypeCellFinish records a cell's final outcome: "ok",
	// "quarantined" (ContinueOnError hole) or "failed", with the first
	// line of the error for the non-ok statuses. Canonical.
	TypeCellFinish = "cell_finish"
	// TypePlanEnd closes a plan with the ok/quarantined/failed tallies.
	// Canonical.
	TypePlanEnd = "plan_end"

	// TypeHostManifest is the host companion of the manifest: worker
	// count, Go version, wall-clock start time.
	TypeHostManifest = "host_manifest"
	// TypeCellHost carries one cell's host-side cost: wall microseconds,
	// process-wide allocation delta, and the worker that ran it.
	TypeCellHost = "cell_host"
	// TypeCellRetry records one host-transient re-run of a cell.
	TypeCellRetry = "cell_retry"
	// TypeCellTimeout records a cell cancelled by Options.CellTimeout.
	TypeCellTimeout = "cell_timeout"
	// TypeCacheHit / TypeCacheMiss record result-cache traffic for one
	// cell; TypeCacheCorrupt records the invocation's corrupt-entry
	// tally (see runner.Cache).
	TypeCacheHit     = "cache_hit"
	TypeCacheMiss    = "cache_miss"
	TypeCacheCorrupt = "cache_corrupt"
	// TypeBench embeds a cmd/hpmmap-perf benchmark record, making
	// BENCH_*.json history queryable through `hpmmap-ledger diff`.
	TypeBench = "bench"
)

// Cell statuses recorded by TypeCellFinish.
const (
	StatusOK          = "ok"
	StatusQuarantined = "quarantined"
	StatusFailed      = "failed"
)

// CanonicalTypes is the deterministic half of the record stream: a
// projection of a ledger onto these types is byte-identical at any
// worker count and cache state. Everything else is host annex.
var CanonicalTypes = map[string]bool{
	TypeManifest:   true,
	TypeCellStart:  true,
	TypeCellFinish: true,
	TypePlanEnd:    true,
}

// Record is one JSONL line of a ledger. One struct covers every record
// type; fields irrelevant to a type stay zero and are omitted from the
// encoding, so each line carries only its own fields. Field order is
// fixed by this declaration, which is what makes canonical output
// byte-stable.
type Record struct {
	// T is the record type (Type* constants).
	T string `json:"t"`

	// Plan names the plan (manifest, plan_end).
	Plan string `json:"plan,omitempty"`
	// Seed is the base seed (manifest) or the cell's coordinate-derived
	// seed (cell_start), as %016x — JSON numbers lose uint64 precision.
	Seed string `json:"seed,omitempty"`
	// Cells is the plan's cell count (manifest).
	Cells int `json:"cells,omitempty"`
	// Model, Scale and Flags are the invocation metadata stamped from
	// Meta (manifest).
	Model string            `json:"model,omitempty"`
	Scale float64           `json:"scale,omitempty"`
	Flags map[string]string `json:"flags,omitempty"`

	// I is the cell's index in the plan (cell_* and cache_* records).
	I int `json:"i,omitempty"`
	// Label is the cell's render (runner.Cell.String) on cell_start.
	Label string `json:"label,omitempty"`
	// Status is the cell outcome on cell_finish (Status* constants).
	Status string `json:"status,omitempty"`
	// Err is the first line of the cell error (cell_finish with a
	// non-ok status, cell_retry). First line only: panic errors carry a
	// host stack trace on the following lines, and the canonical
	// projection must not absorb goroutine IDs and addresses.
	Err string `json:"err,omitempty"`

	// OK/Quarantined/Failed are the plan_end tallies.
	OK          int `json:"ok,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	Failed      int `json:"failed,omitempty"`

	// Workers, Go and Start describe the host execution
	// (host_manifest).
	Workers int    `json:"workers,omitempty"`
	Go      string `json:"go,omitempty"`
	Start   string `json:"start,omitempty"`

	// Worker, WallUS and AllocBytes are the cell's host cost
	// (cell_host). AllocBytes is the process-wide allocation delta over
	// the cell's execution — an attribution, not a measurement, when
	// workers run in parallel.
	Worker     int    `json:"worker,omitempty"`
	WallUS     int64  `json:"wall_us,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	// Attempt is the retry ordinal (cell_retry, 1-based).
	Attempt int `json:"attempt,omitempty"`
	// Count is the corrupt-entry tally (cache_corrupt).
	Count uint64 `json:"count,omitempty"`

	// Bench is the embedded cmd/hpmmap-perf record (bench).
	Bench json.RawMessage `json:"bench,omitempty"`
}

// Meta is the invocation metadata stamped into every plan manifest:
// the simulator's model version, the problem scale, and the flag set
// that shaped the run. All fields are deterministic inputs, never
// host measurements.
type Meta struct {
	Model string
	Scale float64
	Flags map[string]string
}

// Ledger writes the journal. Safe for concurrent use by the runner's
// worker goroutines; a nil *Ledger is the no-op sink.
type Ledger struct {
	mu  sync.Mutex
	w   *bufio.Writer
	f   *os.File
	err error // first write error; surfaced by Err/Close

	meta Meta

	// Current plan state. Canonical cell events are buffered here and
	// flushed sorted by cell index at EndPlan; host records bypass the
	// buffer and stream immediately.
	plan                    string
	buf                     []Record
	ok, quarantined, failed int

	// canonical / plans feed the runner_ledger_* plan metrics
	// (CanonicalRecords, PlanCount).
	canonical uint64
	plans     uint64
}

// New returns a ledger streaming to w. The caller owns w; Close
// flushes but does not close it.
func New(w io.Writer, meta Meta) *Ledger {
	return &Ledger{w: bufio.NewWriter(w), meta: meta}
}

// Open creates (truncating) a ledger file at path.
func Open(path string, meta Meta) (*Ledger, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := New(f, meta)
	l.f = f
	return l, nil
}

// OpenAppend opens a ledger that appends to an existing journal (or
// creates it) — the mode hpmmap-perf uses to attach its bench record to
// a run's ledger without truncating the run's history.
func OpenAppend(path string, meta Meta) (*Ledger, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	l := New(f, meta)
	l.f = f
	return l, nil
}

// write encodes one record as a JSONL line. Callers hold l.mu.
func (l *Ledger) write(r Record) {
	if l.err != nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		l.err = fmt.Errorf("ledger: encode %s: %w", r.T, err)
		return
	}
	if _, err := l.w.Write(append(data, '\n')); err != nil {
		l.err = fmt.Errorf("ledger: write: %w", err)
	}
}

// BeginPlan opens a plan: the canonical manifest followed by the host
// companion (written by beginHost in host.go). workers is the resolved
// pool size and lands only in the host record.
func (l *Ledger) BeginPlan(name string, seed uint64, cells, workers int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.plan = name
	l.buf = l.buf[:0]
	l.ok, l.quarantined, l.failed = 0, 0, 0
	l.plans++
	l.canonical++
	l.write(Record{
		T: TypeManifest, Plan: name, Seed: fmt.Sprintf("%016x", seed),
		Cells: cells, Model: l.meta.Model, Scale: l.meta.Scale, Flags: l.meta.Flags,
	})
	l.beginHost(workers)
	l.flushLocked()
}

// CellStart records a cell entering execution. Buffered (canonical).
func (l *Ledger) CellStart(idx int, label string, seed uint64) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.canonical++
	l.buf = append(l.buf, Record{
		T: TypeCellStart, I: idx, Label: label, Seed: fmt.Sprintf("%016x", seed),
	})
}

// CellFinish records a cell's final outcome. errText must already be
// reduced to its deterministic first line (FirstLine). Buffered
// (canonical).
func (l *Ledger) CellFinish(idx int, status, errText string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch status {
	case StatusQuarantined:
		l.quarantined++
	case StatusFailed:
		l.failed++
	default:
		l.ok++
	}
	l.canonical++
	l.buf = append(l.buf, Record{T: TypeCellFinish, I: idx, Status: status, Err: errText})
}

// EndPlan flushes the plan's buffered canonical cell events sorted by
// cell index (stable, so each cell's start precedes its finish) and
// writes the closing tally record. The sorted flush is what makes the
// canonical projection independent of completion order.
func (l *Ledger) EndPlan() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	sort.SliceStable(l.buf, func(i, j int) bool { return l.buf[i].I < l.buf[j].I })
	for _, r := range l.buf {
		l.write(r)
	}
	l.buf = l.buf[:0]
	l.canonical++
	l.write(Record{
		T: TypePlanEnd, Plan: l.plan,
		OK: l.ok, Quarantined: l.quarantined, Failed: l.failed,
	})
	l.flushLocked()
	l.plan = ""
}

// flushLocked pushes buffered bytes to the underlying writer so `watch`
// sees records promptly. Callers hold l.mu.
func (l *Ledger) flushLocked() {
	if l.err == nil {
		if err := l.w.Flush(); err != nil {
			l.err = fmt.Errorf("ledger: flush: %w", err)
		}
	}
}

// CanonicalRecords returns how many canonical records this ledger has
// accepted — the runner_ledger_records_total source. Deterministic at
// any worker count and cache state, unlike a byte or host-record
// count. Safe on a nil receiver.
func (l *Ledger) CanonicalRecords() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.canonical
}

// PlanCount returns how many plans have begun — the
// runner_ledger_plans_total source. Safe on a nil receiver.
func (l *Ledger) PlanCount() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.plans
}

// Err returns the first write error, if any. Safe on a nil receiver.
func (l *Ledger) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and, when the ledger owns its file (Open), closes it.
// Returns the first error the ledger encountered. Safe on a nil
// receiver.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.flushLocked()
	if l.f != nil {
		if cerr := l.f.Close(); cerr != nil && l.err == nil {
			l.err = fmt.Errorf("ledger: close: %w", cerr)
		}
		l.f = nil
	}
	return l.err
}

// FirstLine reduces an error's text to its first line — the
// deterministic half of a panic message whose following lines carry a
// host stack trace. Returns "" for a nil error.
func FirstLine(err error) string {
	if err == nil {
		return ""
	}
	s := err.Error()
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}

// Canonical filters records down to the canonical projection, in input
// order. Applying it to a well-formed ledger yields the byte-identity
// half of the determinism contract.
func Canonical(recs []Record) []Record {
	var out []Record
	for _, r := range recs {
		if CanonicalTypes[r.T] {
			out = append(out, r)
		}
	}
	return out
}

// Marshal renders records back to JSONL bytes — the form the
// byte-identity tests compare.
func Marshal(recs []Record) ([]byte, error) {
	var out []byte
	for _, r := range recs {
		data, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("ledger: encode %s: %w", r.T, err)
		}
		out = append(out, data...)
		out = append(out, '\n')
	}
	return out, nil
}

// Read decodes a JSONL record stream, skipping blank lines. A decode
// failure reports the 1-based line number.
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("ledger: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ledger: read: %w", err)
	}
	return recs, nil
}

// ReadFile reads a ledger file.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	defer f.Close()
	return Read(f)
}
