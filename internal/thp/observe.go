package thp

import "hpmmap/internal/metrics"

// Observe registers the daemon's scan/merge tallies with the metrics
// registry (pull-mode, read at snapshot time) and, when tr is non-nil,
// arranges for each completed merge to emit a Chrome trace duration
// event on the kernel thread covering the mm-lock window. Both arguments
// are nil-safe; call once after Start.
func (d *Daemon) Observe(reg *metrics.Registry, tr *metrics.ChromeTracer) {
	reg.CounterFunc(metrics.THPScansTotal, func() uint64 { return d.Scans })
	reg.CounterFunc(metrics.THPMergesTotal, func() uint64 { return d.Merges })
	reg.CounterFunc(metrics.THPFailedMergesTotal, func() uint64 { return d.FailedMerges })
	d.tracer = tr
}
