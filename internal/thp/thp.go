// Package thp implements the khugepaged background daemon of Transparent
// Huge Pages: a kernel thread that periodically allocates a 2MB page and
// merges 512 resident small pages of some THP-eligible process region
// into it. While a merge runs it holds the target process's mm lock, so
// page faults arriving in the window stall for the remainder of the merge
// — the paper's "Merge" fault rows (Figure 2) and the blue dots of
// Figure 4. Merges are driven by OS heuristics with no knowledge of
// application phase, and are unsynchronized across ranks: exactly the OS
// noise source the paper identifies.
package thp

import (
	"hpmmap/internal/kernel"
	"hpmmap/internal/metrics"
	"hpmmap/internal/sim"
)

// Merger is the memory-manager side of khugepaged: it knows which
// processes have mergeable small-mapped chunks and how to convert them.
// internal/linuxmm implements it.
type Merger interface {
	// NextMergeCandidate returns a process with at least one THP-eligible
	// chunk currently mapped small, or nil. Successive calls rotate
	// through candidates (khugepaged's round-robin scan).
	NextMergeCandidate() *kernel.Process
	// PerformMerge converts one 2MB chunk of p from small to large
	// mappings, reporting success.
	PerformMerge(p *kernel.Process) bool
}

// Daemon is the khugepaged simulation.
type Daemon struct {
	node   *kernel.Node
	merger Merger
	rand   *sim.Rand
	ticker *sim.Ticker
	tracer *metrics.ChromeTracer // nil unless Observe attached one

	// Statistics.
	Scans, Merges, FailedMerges uint64
}

// Start launches khugepaged with the node's configured scan period.
func Start(node *kernel.Node, merger Merger) *Daemon {
	d := &Daemon{node: node, merger: merger, rand: node.Rand().Split()}
	period := sim.Cycles(node.Config().KhugepagedScanPeriod)
	// Jitter the first scan so multiple nodes' daemons do not align.
	d.ticker = node.Engine().NewTicker(d.rand.Jitter(period, 0.5)+1, func() {
		d.scan()
		d.ticker.Stop()
		d.ticker = node.Engine().NewTicker(d.rand.Jitter(period, 0.25)+1, d.scan)
	})
	return d
}

// Stop halts the daemon.
func (d *Daemon) Stop() {
	if d.ticker != nil {
		d.ticker.Stop()
	}
}

// scan performs one khugepaged pass: pick a candidate, lock its mm for
// the merge duration, then apply the conversion.
func (d *Daemon) scan() {
	d.Scans++
	p := d.merger.NextMergeCandidate()
	if p == nil || p.Exited {
		return
	}
	load := d.node.LoadFor(p)
	dur := d.node.Config().Costs.MergeDuration(d.rand, load)
	now := d.node.Now()
	p.MMLockedUntil = now + dur
	// Deposit the stall: the process's next fault activity inside the
	// window pays for it. (If the process never faults again, nothing is
	// charged — merges only hurt active processes.)
	p.PendingMergeCosts = append(p.PendingMergeCosts, dur)
	d.node.Engine().Schedule(dur, func() {
		if p.Exited {
			return
		}
		if d.merger.PerformMerge(p) {
			d.Merges++
			d.tracer.Complete(0, "khugepaged", "merge", uint64(now), uint64(dur))
		} else {
			d.FailedMerges++
			d.tracer.Complete(0, "khugepaged", "merge_failed", uint64(now), uint64(dur))
		}
	})
}
