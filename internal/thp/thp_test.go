package thp

import (
	"testing"

	"hpmmap/internal/kernel"
	"hpmmap/internal/linuxmm"
	"hpmmap/internal/pgtable"
	"hpmmap/internal/sim"
	"hpmmap/internal/vma"
)

type env struct {
	eng  *sim.Engine
	node *kernel.Node
	mgr  *linuxmm.Manager
	d    *Daemon
}

func newEnv(t *testing.T) *env {
	t.Helper()
	eng := sim.NewEngine()
	node := kernel.NewNode(kernel.DellR415(), eng, sim.NewRand(11))
	mgr := linuxmm.New(node, linuxmm.ModeTHP, linuxmm.ModeTHP, nil)
	node.SetDefaultMM(mgr)
	d := Start(node, mgr)
	return &env{eng: eng, node: node, mgr: mgr, d: d}
}

// forceFallbacks creates a process whose THP faults all fall back small.
func forceFallbacks(t *testing.T, e *env) *kernel.Process {
	t.Helper()
	e.mgr.THPFallbackBase = 1.0  // every chunk falls back
	e.mgr.THPFragSensitivity = 0 // and no compaction recovery either
	p, err := e.node.NewProcess("app", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr, _, err := e.node.Mmap(p, 16<<20, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.node.TouchRange(p, addr, 16<<20); err != nil {
		t.Fatal(err)
	}
	e.mgr.THPFallbackBase = 0
	return p
}

func TestDaemonMergesFallbackChunks(t *testing.T) {
	e := newEnv(t)
	p := forceFallbacks(t, e)
	if p.ResidentSmall == 0 {
		t.Fatal("setup: fallbacks produced no small pages")
	}
	large := p.ResidentLarge
	small := p.ResidentSmall
	_ = large
	// Run long enough for several scan periods.
	e.eng.RunUntil(sim.Cycles(e.node.Config().KhugepagedScanPeriod * 12))
	if e.d.Scans == 0 {
		t.Fatal("daemon never scanned")
	}
	if e.d.Merges == 0 {
		t.Fatal("daemon never merged")
	}
	if p.ResidentLarge <= large {
		t.Fatal("merges did not convert residency to large pages")
	}
	if p.ResidentSmall >= small {
		t.Fatal("merges did not shrink small residency")
	}
}

func TestMergesDepositStalls(t *testing.T) {
	e := newEnv(t)
	p := forceFallbacks(t, e)
	e.eng.RunUntil(sim.Cycles(e.node.Config().KhugepagedScanPeriod * 6))
	if e.d.Merges == 0 {
		t.Skip("no merges in window (timing)")
	}
	// Merge-blocked stalls are charged on the process's next fault
	// activity; the mm lock timestamp is also published.
	total := p.Faults.Faults
	_ = total
	if p.MMLockedUntil == 0 {
		t.Fatal("mm lock never taken")
	}
	// Trigger fault activity and observe the merge-blocked charge.
	addr, _, _ := e.node.Mmap(p, 1<<20, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	st, err := e.node.TouchRange(p, addr, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults[2] == 0 { // fault.KindMergeBlocked
		t.Fatal("no merge-blocked fault charged after merges")
	}
}

func TestDaemonIdleWithNoCandidates(t *testing.T) {
	e := newEnv(t)
	p, _ := e.node.NewProcess("app", false, 0)
	addr, _, _ := e.node.Mmap(p, 16<<20, pgtable.ProtRead|pgtable.ProtWrite, vma.KindAnon)
	e.mgr.THPFallbackBase = 0
	if _, err := e.node.TouchRange(p, addr, 16<<20); err != nil {
		t.Fatal(err)
	}
	e.eng.RunUntil(sim.Cycles(e.node.Config().KhugepagedScanPeriod * 6))
	if e.d.Merges != 0 {
		t.Fatalf("merged %d with no fallback chunks", e.d.Merges)
	}
	if len(p.PendingMergeCosts) != 0 {
		t.Fatal("stalls deposited with no merges")
	}
}

func TestDaemonStop(t *testing.T) {
	e := newEnv(t)
	forceFallbacks(t, e)
	e.d.Stop()
	e.eng.RunUntil(sim.Cycles(e.node.Config().KhugepagedScanPeriod * 6))
	if e.d.Scans != 0 {
		t.Fatalf("stopped daemon scanned %d times", e.d.Scans)
	}
}

func TestMergeSkipsExitedProcess(t *testing.T) {
	e := newEnv(t)
	p := forceFallbacks(t, e)
	e.node.Exit(p)
	e.eng.RunUntil(sim.Cycles(e.node.Config().KhugepagedScanPeriod * 6))
	if e.d.Merges != 0 {
		t.Fatal("daemon merged into an exited process")
	}
}

func TestMergeRoundRobinAcrossProcesses(t *testing.T) {
	e := newEnv(t)
	a := forceFallbacks(t, e)
	b := forceFallbacks(t, e)
	e.eng.RunUntil(sim.Cycles(e.node.Config().KhugepagedScanPeriod * 30))
	if a.ResidentLarge == 0 || b.ResidentLarge == 0 {
		t.Fatalf("merges not distributed: a=%d b=%d", a.ResidentLarge, b.ResidentLarge)
	}
}
