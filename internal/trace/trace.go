// Package trace captures per-fault records during micro-level experiments
// and renders them as the paper's tables (Figures 2–3) and timeline
// scatter plots (Figures 4–5), in ASCII and CSV form.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"hpmmap/internal/fault"
	"hpmmap/internal/sim"
)

// Recorder accumulates fault records in completion order.
type Recorder struct {
	records []fault.Record
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one fault.
func (r *Recorder) Record(rec fault.Record) { r.records = append(r.records, rec) }

// Records returns a copy of the captured records, in completion order.
// Callers may sort, filter or mutate the returned slice freely without
// corrupting the recorder. (It used to return the internal slice, which
// let a caller's append or in-place sort silently alter subsequent
// Summarize/Scatter output.) For read-only scans without the copy, use
// Each.
func (r *Recorder) Records() []fault.Record {
	out := make([]fault.Record, len(r.records))
	copy(out, r.records)
	return out
}

// Each calls fn for every captured record in completion order, without
// copying. fn must not call Record or Reset on the same recorder.
func (r *Recorder) Each(fn func(fault.Record)) {
	for _, rec := range r.records {
		fn(rec)
	}
}

// Len returns the number of captured faults.
func (r *Recorder) Len() int { return len(r.records) }

// KindSummary is the per-kind statistics row of the paper's fault tables.
type KindSummary struct {
	Kind        fault.Kind
	Count       uint64
	AvgCycles   float64
	StdevCycles float64
	MaxCycles   sim.Cycles
}

// Summarize computes per-kind statistics over the recorded faults.
func (r *Recorder) Summarize() []KindSummary {
	type agg struct {
		n        uint64
		sum, ssq float64
		max      sim.Cycles
	}
	var a [fault.NumKinds]agg
	for _, rec := range r.records {
		x := &a[rec.Kind]
		x.n++
		v := float64(rec.Cost)
		x.sum += v
		x.ssq += v * v
		if rec.Cost > x.max {
			x.max = rec.Cost
		}
	}
	var out []KindSummary
	for k := 0; k < fault.NumKinds; k++ {
		if a[k].n == 0 {
			continue
		}
		mean := a[k].sum / float64(a[k].n)
		variance := a[k].ssq/float64(a[k].n) - mean*mean
		if variance < 0 {
			variance = 0
		}
		out = append(out, KindSummary{
			Kind:        fault.Kind(k),
			Count:       a[k].n,
			AvgCycles:   mean,
			StdevCycles: math.Sqrt(variance),
			MaxCycles:   a[k].max,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteTable renders the summary in the style of the paper's Figures 2–3.
func (r *Recorder) WriteTable(w io.Writer, title string) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-14s %10s %14s %14s %14s\n", "Fault Size", "Total", "Avg Cycles", "Stdev Cycles", "Max Cycles")
	for _, s := range r.Summarize() {
		fmt.Fprintf(w, "%-14s %10d %14.0f %14.0f %14d\n", s.Kind, s.Count, s.AvgCycles, s.StdevCycles, s.MaxCycles)
	}
}

// WriteCSV emits one line per fault: time_cycles,cost_cycles,kind,stalled.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "at_cycles,cost_cycles,kind,pid,stalled"); err != nil {
		return err
	}
	for _, rec := range r.records {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%d,%t\n", rec.At, rec.Cost, rec.Kind, rec.PID, rec.Stalls); err != nil {
			return err
		}
	}
	return nil
}

// Scatter renders an ASCII scatter plot of fault cost against time, the
// shape of the paper's Figures 4–5. Each kind gets its own glyph:
// '.' small, 'O' large, 'M' merge-blocked, 'H' hugetlb-large,
// 'h' hugetlb-small(reclaim), 's' stack.
func (r *Recorder) Scatter(width, height int, logY bool) string {
	if len(r.records) == 0 {
		return "(no faults)\n"
	}
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	minT, maxT := r.records[0].At, r.records[0].At
	var maxC sim.Cycles = 1
	for _, rec := range r.records {
		if rec.At < minT {
			minT = rec.At
		}
		if rec.At > maxT {
			maxT = rec.At
		}
		if rec.Cost > maxC {
			maxC = rec.Cost
		}
	}
	span := float64(maxT-minT) + 1
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	yOf := func(c sim.Cycles) int {
		var frac float64
		if logY {
			frac = math.Log1p(float64(c)) / math.Log1p(float64(maxC))
		} else {
			frac = float64(c) / float64(maxC)
		}
		y := int(frac * float64(height-1))
		if y >= height {
			y = height - 1
		}
		return height - 1 - y
	}
	glyph := map[fault.Kind]byte{
		fault.KindSmall:        '.',
		fault.KindLarge:        'O',
		fault.KindMergeBlocked: 'M',
		fault.KindHugeTLBLarge: 'H',
		fault.KindHugeTLBSmall: 'h',
		fault.KindStackGrow:    's',
	}
	// Draw cheap kinds first so expensive outliers overwrite them.
	order := []fault.Kind{fault.KindSmall, fault.KindStackGrow, fault.KindHugeTLBSmall,
		fault.KindHugeTLBLarge, fault.KindLarge, fault.KindMergeBlocked}
	for _, k := range order {
		for _, rec := range r.records {
			if rec.Kind != k {
				continue
			}
			x := int(float64(rec.At-minT) / span * float64(width))
			if x >= width {
				x = width - 1
			}
			grid[yOf(rec.Cost)][x] = glyph[k]
		}
	}
	var b strings.Builder
	scale := "linear"
	if logY {
		scale = "log"
	}
	fmt.Fprintf(&b, "cycles (max %d, %s scale)\n", maxC, scale)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString("+" + strings.Repeat("-", width) + "> time\n")
	b.WriteString("  . small  O 2MB  M merge-blocked  H hugetlb-2MB  h hugetlb-4KB  s stack\n")
	return b.String()
}

// FilterKind returns a new recorder holding only records of kind k.
func (r *Recorder) FilterKind(k fault.Kind) *Recorder {
	out := NewRecorder()
	for _, rec := range r.records {
		if rec.Kind == k {
			out.Record(rec)
		}
	}
	return out
}

// Reset discards all records.
func (r *Recorder) Reset() { r.records = r.records[:0] }

// Histogram renders an ASCII log-scale histogram of fault costs for one
// kind — the distribution view behind the tables' stdev columns.
func (r *Recorder) Histogram(k fault.Kind, buckets, width int) string {
	if buckets < 2 {
		buckets = 2
	}
	var costs []float64
	for _, rec := range r.records {
		if rec.Kind == k {
			costs = append(costs, float64(rec.Cost))
		}
	}
	if len(costs) == 0 {
		return fmt.Sprintf("(no %s faults)\n", k)
	}
	lo, hi := costs[0], costs[0]
	for _, c := range costs {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		hi = lo * 2
	}
	logLo, logHi := math.Log(lo), math.Log(hi)
	counts := make([]int, buckets)
	for _, c := range costs {
		if c < 1 {
			c = 1
		}
		i := int((math.Log(c) - logLo) / (logHi - logLo) * float64(buckets))
		if i >= buckets {
			i = buckets - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	max := 1
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s fault cost distribution (%d faults, log buckets)\n", k, len(costs))
	for i, c := range counts {
		lowEdge := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(buckets))
		bar := int(float64(c) / float64(max) * float64(width))
		fmt.Fprintf(&b, "%12.0f |%s %d\n", lowEdge, strings.Repeat("#", bar), c)
	}
	return b.String()
}
