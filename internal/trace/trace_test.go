package trace

import (
	"strings"
	"testing"

	"hpmmap/internal/fault"
	"hpmmap/internal/sim"
)

func sample() *Recorder {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Record(fault.Record{At: sim.Cycles(i * 1000), Cost: 2000, Kind: fault.KindSmall, PID: 1})
	}
	for i := 0; i < 10; i++ {
		r.Record(fault.Record{At: sim.Cycles(i * 10000), Cost: 370000, Kind: fault.KindLarge, PID: 1})
	}
	r.Record(fault.Record{At: 55555, Cost: 1000000, Kind: fault.KindMergeBlocked, PID: 1, Stalls: true})
	return r
}

func TestSummarize(t *testing.T) {
	r := sample()
	sums := r.Summarize()
	if len(sums) != 3 {
		t.Fatalf("%d kinds summarized", len(sums))
	}
	bykind := map[fault.Kind]KindSummary{}
	for _, s := range sums {
		bykind[s.Kind] = s
	}
	small := bykind[fault.KindSmall]
	if small.Count != 100 || small.AvgCycles != 2000 || small.StdevCycles != 0 {
		t.Fatalf("small summary %+v", small)
	}
	if bykind[fault.KindMergeBlocked].MaxCycles != 1000000 {
		t.Fatal("merge max wrong")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if got := NewRecorder().Summarize(); len(got) != 0 {
		t.Fatalf("empty recorder summarized to %v", got)
	}
}

func TestWriteTable(t *testing.T) {
	var b strings.Builder
	sample().WriteTable(&b, "THP (miniMD)")
	out := b.String()
	for _, want := range []string{"THP (miniMD)", "small", "large", "merge", "100", "370000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sample().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 112 { // header + 111 records
		t.Fatalf("%d CSV lines", len(lines))
	}
	if lines[0] != "at_cycles,cost_cycles,kind,pid,stalled" {
		t.Fatalf("header %q", lines[0])
	}
	if !strings.Contains(lines[len(lines)-1], "merge") {
		t.Fatal("last record should be the merge fault")
	}
}

func TestScatterShapes(t *testing.T) {
	out := sample().Scatter(60, 12, true)
	if !strings.Contains(out, "O") || !strings.Contains(out, ".") || !strings.Contains(out, "M") {
		t.Fatalf("scatter missing glyphs:\n%s", out)
	}
	// Merge fault is the most expensive: its glyph appears on the top
	// data row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "M") {
		t.Fatalf("top row should hold the merge outlier:\n%s", out)
	}
	if NewRecorder().Scatter(60, 12, false) != "(no faults)\n" {
		t.Fatal("empty scatter not handled")
	}
	// Tiny dimensions are clamped, not crashed.
	_ = sample().Scatter(1, 1, false)
}

func TestFilterKindAndReset(t *testing.T) {
	r := sample()
	large := r.FilterKind(fault.KindLarge)
	if large.Len() != 10 {
		t.Fatalf("filtered %d", large.Len())
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestHistogram(t *testing.T) {
	r := sample()
	h := r.Histogram(fault.KindSmall, 8, 40)
	if !strings.Contains(h, "#") || !strings.Contains(h, "100 faults") {
		t.Fatalf("histogram:\n%s", h)
	}
	if got := r.Histogram(fault.KindHugeTLBLarge, 8, 40); !strings.Contains(got, "no hugetlb-large faults") {
		t.Fatalf("empty histogram: %q", got)
	}
	// Degenerate bucket count clamps.
	_ = r.Histogram(fault.KindSmall, 1, 10)
}
