// Package metrics is the simulation-wide observability layer: a
// zero-allocation-on-hot-path metrics registry (counters, gauges and
// cycle histograms with fixed log2 buckets) plus a structured event
// tracer that emits Chrome trace-event JSON keyed by simulated cycles
// (see chrome.go).
//
// The design contract, documented in full in OBSERVABILITY.md at the
// repository root (the doc is the API — every shipped metric name lives
// in names.go and is cross-checked against the doc by contract_test.go):
//
//   - A nil *Registry is the no-op default. Registry accessors on a nil
//     receiver return nil handles, and every handle method (Counter.Add,
//     Gauge.Set, Histogram.Observe) is nil-safe, so uninstrumented hot
//     paths pay one predictable branch and zero allocations.
//   - Handles are obtained once at setup (Registry.Counter et al.) and
//     written with plain field arithmetic afterwards: no maps, no
//     interface calls, no allocation on the hot path.
//   - A Registry belongs to one simulation cell and is not safe for
//     concurrent use; the experiment runner gives every cell its own
//     registry and merges the resulting Snapshots afterwards, which is
//     how results stay byte-identical at any worker count.
//   - Pull-mode metrics (CounterFunc, GaugeFunc) read existing subsystem
//     tallies at Snapshot time, so instrumenting an already-counting
//     subsystem costs nothing at runtime. Registering the same pull name
//     repeatedly is additive: the snapshot sums all registered sources
//     (one buddy pool per NUMA zone, one node per cluster member).
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter is a no-op (the uninstrumented default).
type Counter struct {
	v uint64
}

// Inc adds one. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous value (bytes resident, pressure, a ratio).
// The zero value is ready to use; a nil *Gauge is a no-op.
type Gauge struct {
	v float64
}

// Set replaces the value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Add adjusts the value by d. No-op on a nil receiver.
func (g *Gauge) Add(d float64) {
	if g != nil {
		g.v += d
	}
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// NumBuckets is the fixed bucket count of every Histogram: bucket 0
// holds observations of exactly 0 and bucket i (1 ≤ i ≤ 64) holds
// observations v with 2^(i-1) ≤ v < 2^i — i.e. values bucketed by bit
// length, covering the full uint64 range with no configuration.
const NumBuckets = 65

// Histogram distributes uint64 observations (cycle costs, byte sizes)
// over fixed log2 buckets. Observing allocates nothing; the zero value
// is ready to use and a nil *Histogram is a no-op.
type Histogram struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile returns an upper bound on the q-quantile (0 < q ≤ 1) of the
// observed values: the inclusive upper bound of the log2 bucket holding
// the ⌈q·count⌉-th smallest observation. Log2 buckets make this a
// factor-of-two estimate, which is exactly the resolution the tail
// tables need — p99 moving a bucket means the tail doubled. Returns 0
// on an empty (or nil) histogram.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil || h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if float64(rank) < q*float64(h.count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			_, hi := BucketBounds(i)
			return hi
		}
	}
	_, hi := BucketBounds(NumBuckets - 1)
	return hi
}

// BucketBounds returns the inclusive value range [lo, hi] of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	if i >= 64 {
		return 1 << 63, ^uint64(0)
	}
	return 1 << (i - 1), 1<<i - 1
}

// Kind classifies a metric for rendering and merging.
type Kind string

// Metric kinds. Counters and gauges carry Value; histograms carry
// Count, Sum and Buckets.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// MergeMode selects how Merge folds one gauge across cell snapshots.
// Counters and histograms always sum; most gauges in this simulator are
// additive quantities (bytes, pages) and sum too, but ratio- and
// pressure-style gauges sum into nonsense — those take the max (the
// worst cell), which is the reading a capacity question actually wants.
type MergeMode string

// Gauge merge modes. The empty string is the additive default, so the
// field is omitted from JSON snapshots for the common case (and old
// cached snapshots, which predate the field, fall back to
// GaugeMergeModes by name).
const (
	MergeSum MergeMode = ""
	MergeMax MergeMode = "max"
)

// GaugeMergeModes is the canonical name → merge-mode table for gauges
// with a non-default mode. It is the source of truth at Snapshot time
// (the mode is stamped into the metric) and the fallback at Merge time
// for snapshots cached before the field existed. The OBSERVABILITY.md
// metric table annotates these rows with "merge: max"; the contract
// test cross-checks the two.
var GaugeMergeModes = map[string]MergeMode{
	BuddyFragRatio:       MergeMax,
	KernelCommitPressure: MergeMax,
	SimFinalCycles:       MergeMax,
}

// entry is one registered metric with its push handle and any pull
// sources registered under the same name.
type entry struct {
	name       string
	kind       Kind
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	counterFns []func() uint64
	gaugeFns   []func() float64
}

// Registry names and owns a simulation cell's metrics. Obtain handles
// once at setup and increment them on the hot path; call Snapshot after
// the run. A nil *Registry is the valid no-op default: accessors return
// nil handles and pull registration is discarded. Not safe for
// concurrent use — one registry per simulation cell.
type Registry struct {
	byName map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// lookup finds or creates the entry for name, panicking on a kind
// mismatch (a programming error the contract test would also catch).
func (r *Registry) lookup(name string, kind Kind) *entry {
	if err := ValidateName(name); err != nil {
		panic("metrics: " + err.Error())
	}
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, kind: kind}
	r.byName[name] = e
	return e
}

// ValidateName enforces the naming scheme of OBSERVABILITY.md:
// subsystem_name_unit in lower snake case.
func ValidateName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return fmt.Errorf("metric name %q violates the [a-z][a-z0-9_]* scheme", name)
		}
	}
	return nil
}

// Counter returns the push counter registered under name, creating it
// on first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, KindCounter)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge returns the push gauge registered under name, creating it on
// first use. Returns nil (a no-op handle) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, KindGauge)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram returns the log2-bucket histogram registered under name,
// creating it on first use. Returns nil (a no-op handle) on a nil
// registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, KindHistogram)
	if e.hist == nil {
		e.hist = &Histogram{}
	}
	return e.hist
}

// CounterFunc registers a pull-mode counter source read at Snapshot
// time. Registering the same name repeatedly is additive (the snapshot
// sums all sources), which is how per-zone or per-node tallies
// aggregate under one metric. No-op on a nil registry.
func (r *Registry) CounterFunc(name string, fn func() uint64) {
	if r == nil || fn == nil {
		return
	}
	e := r.lookup(name, KindCounter)
	e.counterFns = append(e.counterFns, fn)
}

// GaugeFunc registers a pull-mode gauge source read at Snapshot time.
// Additive across repeated registrations, like CounterFunc. No-op on a
// nil registry.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	e := r.lookup(name, KindGauge)
	e.gaugeFns = append(e.gaugeFns, fn)
}

// Bucket is one non-empty histogram bucket of a Snapshot, with its
// inclusive value bounds.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// Metric is one metric's state inside a Snapshot.
type Metric struct {
	Name string `json:"name"`
	Kind Kind   `json:"kind"`
	// Value carries the counter count or gauge reading (push handle
	// plus all pull sources).
	Value float64 `json:"value"`
	// Count, Sum and Buckets carry histogram state.
	Count   uint64   `json:"count,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	// MergeMode records how Merge folds this gauge across cells
	// (omitted for the additive default; see GaugeMergeModes).
	MergeMode MergeMode `json:"merge,omitempty"`
}

// Snapshot is an immutable, JSON-serializable capture of a registry,
// sorted by metric name so output is deterministic.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures the registry's current state. Safe on a nil
// registry (returns an empty snapshot).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	var s Snapshot
	for _, e := range r.byName {
		m := Metric{Name: e.name, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			v := e.counter.Value()
			for _, fn := range e.counterFns {
				v += fn()
			}
			m.Value = float64(v)
		case KindGauge:
			v := e.gauge.Value()
			for _, fn := range e.gaugeFns {
				v += fn()
			}
			m.Value = v
			m.MergeMode = GaugeMergeModes[e.name]
		case KindHistogram:
			m.Count = e.hist.Count()
			m.Sum = e.hist.Sum()
			for i, c := range e.hist.buckets {
				if c == 0 {
					continue
				}
				lo, hi := BucketBounds(i)
				m.Buckets = append(m.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
			}
		}
		s.Metrics = append(s.Metrics, m)
	}
	sort.Slice(s.Metrics, func(i, j int) bool { return s.Metrics[i].Name < s.Metrics[j].Name })
	return s
}

// Get returns the named metric of the snapshot.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// CounterValue returns the named counter's count, or 0 when absent —
// convenient for tests and table cross-checks.
func (s Snapshot) CounterValue(name string) uint64 {
	m, ok := s.Get(name)
	if !ok {
		return 0
	}
	return uint64(m.Value)
}

// Merge combines snapshots metric-by-metric: counter values, histogram
// counts/sums/buckets always sum, and gauges fold per their MergeMode —
// additive gauges (bytes, pages) sum, ratio/pressure gauges tagged
// MergeMax in GaugeMergeModes take the maximum across cells (summing
// buddy_fragmentation_ratio over 96 cells is meaningless; the worst
// cell is the meaningful reduction). Snapshots cached before the
// MergeMode field existed resolve their mode from GaugeMergeModes by
// name, so old cache entries merge with the same semantics as fresh
// ones. The result is sorted by name and carries the resolved mode, so
// merged output is byte-identical whether inputs were stamped or not.
func Merge(snaps ...Snapshot) Snapshot {
	acc := make(map[string]*Metric)
	bkts := make(map[string]*[NumBuckets]uint64)
	var order []string
	for _, s := range snaps {
		for _, m := range s.Metrics {
			mode := m.MergeMode
			if m.Kind == KindGauge && mode == MergeSum {
				mode = GaugeMergeModes[m.Name]
			}
			a, ok := acc[m.Name]
			if !ok {
				cp := m
				cp.Buckets = nil
				acc[m.Name] = &cp
				order = append(order, m.Name)
				bkts[m.Name] = &[NumBuckets]uint64{}
				a = acc[m.Name]
				a.Value = 0
				a.Count = 0
				a.Sum = 0
				a.MergeMode = mode
			}
			if m.Kind == KindGauge && mode == MergeMax {
				if m.Value > a.Value {
					a.Value = m.Value
				}
			} else {
				a.Value += m.Value
			}
			a.Count += m.Count
			a.Sum += m.Sum
			b := bkts[m.Name]
			for _, bk := range m.Buckets {
				b[bits.Len64(bk.Lo)] += bk.Count
			}
		}
	}
	sort.Strings(order)
	var out Snapshot
	for _, name := range order {
		m := *acc[name]
		if m.Kind == KindHistogram {
			for i, c := range bkts[name] {
				if c == 0 {
					continue
				}
				lo, hi := BucketBounds(i)
				m.Buckets = append(m.Buckets, Bucket{Lo: lo, Hi: hi, Count: c})
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// WriteText renders the snapshot in a Prometheus-exposition-style text
// format: "# TYPE name kind" lines followed by "name value" samples;
// histograms expose _count, _sum and cumulative _bucket{le="hi"}
// samples. Output is deterministic (sorted by name).
func (s Snapshot) WriteText(w io.Writer) error {
	for _, m := range s.Metrics {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case KindHistogram:
			cum := uint64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m.Name, b.Hi, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.Name, m.Sum, m.Name, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", m.Name, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatValue prints counters as integers (so counts byte-match table
// output) and non-integral gauges with fixed precision.
func formatValue(v float64) string {
	if v == float64(uint64(v)) {
		return fmt.Sprintf("%d", uint64(v))
	}
	return fmt.Sprintf("%.6f", v)
}

// WriteJSON renders the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
