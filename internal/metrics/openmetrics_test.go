package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// TestWriteOpenMetricsGolden pins the exposition byte-for-byte for a
// registry exercising all three kinds, the counter-family renaming
// (hpmmap_bytes_mapped lacks the _total suffix internally and gains it
// on the sample), HELP sourcing from MetricHelp, and the mandatory
// +Inf bucket and # EOF terminator.
func TestWriteOpenMetricsGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(BuddyAllocsTotal).Add(42)
	r.Counter(HPMMAPBytesMapped).Add(1 << 21)
	r.Gauge(BuddyFragRatio).Set(0.25)
	h := r.Histogram(FaultSmallCycles)
	h.Observe(3) // bucket [2,4)
	h.Observe(3)
	h.Observe(900) // bucket [512,1024)

	var buf bytes.Buffer
	if err := r.Snapshot().WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		`# HELP buddy_allocs successful block allocations`,
		`# TYPE buddy_allocs counter`,
		`buddy_allocs_total 42`,
		`# HELP buddy_fragmentation_ratio 1 − largest-free-block / free-bytes (merge: max)`,
		`# TYPE buddy_fragmentation_ratio gauge`,
		`buddy_fragmentation_ratio 0.250000`,
		`# HELP fault_small_cycles cost of each 4KB fault`,
		`# TYPE fault_small_cycles histogram`,
		`fault_small_cycles_bucket{le="3"} 2`,
		`fault_small_cycles_bucket{le="1023"} 3`,
		`fault_small_cycles_bucket{le="+Inf"} 3`,
		`fault_small_cycles_sum 906`,
		`fault_small_cycles_count 3`,
		`# HELP hpmmap_bytes_mapped cumulative bytes handed out by mmap/brk`,
		`# TYPE hpmmap_bytes_mapped counter`,
		`hpmmap_bytes_mapped_total 2097152`,
		`# EOF`,
		``,
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestOpenMetricsValidityAllMetrics is the promtool-shaped format
// check: register every metric the contract declares (with its
// documented kind), expose the snapshot, and require that the stream
// parses cleanly, terminates with # EOF, carries a HELP and TYPE line
// per family, and round-trips every value.
func TestOpenMetricsValidityAllMetrics(t *testing.T) {
	consts := parseNameConstants(t)
	kinds := docMetricRows(t)
	r := NewRegistry()
	i := uint64(0)
	for _, name := range consts {
		i++
		switch kinds[name] {
		case "counter":
			r.Counter(name).Add(i)
		case "gauge":
			r.Gauge(name).Set(float64(i) + 0.5)
		case "histogram":
			h := r.Histogram(name)
			h.Observe(i)
			h.Observe(i * 1000)
		default:
			t.Fatalf("metric %q has no documented kind", name)
		}
	}
	snap := r.Snapshot()
	var buf bytes.Buffer
	if err := snap.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	exposition := buf.String()

	// Structural validity: one HELP and one TYPE per family, TYPE
	// before any of the family's samples, EOF last.
	if !strings.HasSuffix(exposition, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
	typed := map[string]bool{}
	for n, line := range strings.Split(strings.TrimSuffix(exposition, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)[2]
			if typed[f] {
				t.Errorf("line %d: duplicate TYPE for %s", n+1, f)
			}
			typed[f] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
			if f := strings.TrimSuffix(name, suf); f != name && typed[f] {
				family = f
				break
			}
		}
		if !typed[family] {
			t.Errorf("line %d: sample %q precedes its TYPE declaration", n+1, name)
		}
	}
	for _, name := range consts {
		family := name
		if kinds[name] == "counter" {
			family = strings.TrimSuffix(family, "_total")
		}
		if !strings.Contains(exposition, "# HELP "+family+" ") {
			t.Errorf("family %s has no HELP line", family)
		}
	}

	// Semantic validity: parse back and compare against the source
	// snapshot (counter samples live under <family>_total).
	parsed, err := ParseExposition(strings.NewReader(exposition))
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	for _, m := range snap.Metrics {
		expName := m.Name
		if m.Kind == KindCounter {
			expName = strings.TrimSuffix(expName, "_total") + "_total"
		}
		p, ok := parsed.Get(expName)
		if !ok {
			t.Errorf("metric %s missing from parsed exposition (as %s)", m.Name, expName)
			continue
		}
		if p.Kind != m.Kind {
			t.Errorf("%s: parsed kind %s, want %s", m.Name, p.Kind, m.Kind)
		}
		if m.Kind == KindHistogram {
			if p.Count != m.Count || p.Sum != m.Sum || len(p.Buckets) != len(m.Buckets) {
				t.Errorf("%s: parsed count/sum/buckets = %d/%d/%d, want %d/%d/%d",
					m.Name, p.Count, p.Sum, len(p.Buckets), m.Count, m.Sum, len(m.Buckets))
			}
			for i := range p.Buckets {
				if p.Buckets[i].Hi != m.Buckets[i].Hi || p.Buckets[i].Count != m.Buckets[i].Count {
					t.Errorf("%s bucket %d: parsed {hi=%d c=%d}, want {hi=%d c=%d}", m.Name, i,
						p.Buckets[i].Hi, p.Buckets[i].Count, m.Buckets[i].Hi, m.Buckets[i].Count)
				}
			}
		} else if p.Value != m.Value {
			t.Errorf("%s: parsed value %v, want %v", m.Name, p.Value, m.Value)
		}
	}
}

// TestParseExpositionRejectsMalformed: the parser is the format gate
// for diff inputs, so it must reject streams promtool would.
func TestParseExpositionRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing EOF":     "# TYPE a gauge\na 1\n",
		"data after EOF":  "# TYPE a gauge\na 1\n# EOF\na 2\n",
		"bad value":       "# TYPE a gauge\na one\n# EOF\n",
		"bad sample":      "# TYPE a gauge\njustaname\n# EOF\n",
		"unknown type":    "# TYPE a summary\na 1\n# EOF\n",
		"bucket sans le":  "# TYPE a histogram\na_bucket{ge=\"1\"} 1\n# EOF\n",
		"non-monotonic":   "# TYPE a histogram\na_bucket{le=\"1\"} 5\na_bucket{le=\"2\"} 3\n# EOF\n",
		"unclosed labels": "# TYPE a gauge\na{x=\"1\" 2\n# EOF\n",
	}
	for name, in := range cases {
		if _, err := ParseExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}
