package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseExposition decodes an OpenMetrics text stream written by
// WriteOpenMetrics back into a Snapshot, for cross-run diffing
// (`hpmmap-ledger diff a.prom b.prom`). Metric names are kept in
// exposition form — counter samples under `<family>_total`, histograms
// reassembled from their cumulative buckets — so two parsed snapshots
// compare consistently with each other. Unknown comment lines are
// ignored; a malformed sample or a missing `# EOF` terminator is an
// error, which is the promtool-shaped validity check the format tests
// lean on.
func ParseExposition(r io.Reader) (Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	kinds := map[string]Kind{} // family → declared kind
	metrics := map[string]*Metric{}
	var order []string
	var prevCum = map[string]uint64{} // histogram family → cumulative count so far
	sawEOF := false
	line := 0

	get := func(name string, kind Kind) *Metric {
		m, ok := metrics[name]
		if !ok {
			m = &Metric{Name: name, Kind: kind}
			metrics[name] = m
			order = append(order, name)
		}
		return m
	}

	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), " ")
		if text == "" {
			continue
		}
		if sawEOF {
			return Snapshot{}, fmt.Errorf("metrics: line %d: data after # EOF", line)
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			switch {
			case len(fields) >= 2 && fields[1] == "EOF":
				sawEOF = true
			case len(fields) >= 4 && fields[1] == "TYPE":
				k := Kind(fields[3])
				if k != KindCounter && k != KindGauge && k != KindHistogram {
					return Snapshot{}, fmt.Errorf("metrics: line %d: unknown type %q", line, fields[3])
				}
				kinds[fields[2]] = k
			}
			continue // HELP and other comments carry no sample state
		}

		// Sample line: name[{labels}] value
		sp := strings.LastIndexByte(text, ' ')
		if sp < 0 {
			return Snapshot{}, fmt.Errorf("metrics: line %d: malformed sample %q", line, text)
		}
		name, valText := text[:sp], text[sp+1:]
		var labels string
		if br := strings.IndexByte(name, '{'); br >= 0 {
			if !strings.HasSuffix(name, "}") {
				return Snapshot{}, fmt.Errorf("metrics: line %d: unterminated labels in %q", line, text)
			}
			labels = name[br+1 : len(name)-1]
			name = name[:br]
		}
		val, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			return Snapshot{}, fmt.Errorf("metrics: line %d: bad value %q", line, valText)
		}

		// Resolve the owning family: histograms expose _bucket/_sum/
		// _count samples, counters expose _total.
		switch {
		case histSuffix(name, "_bucket", kinds):
			family := strings.TrimSuffix(name, "_bucket")
			le, ok := labelValue(labels, "le")
			if !ok {
				return Snapshot{}, fmt.Errorf("metrics: line %d: bucket sample without le label", line)
			}
			m := get(family, KindHistogram)
			if le == "+Inf" {
				continue // total count arrives via _count
			}
			hi, err := strconv.ParseUint(le, 10, 64)
			if err != nil {
				return Snapshot{}, fmt.Errorf("metrics: line %d: bad le %q", line, le)
			}
			cum := uint64(val)
			if cum < prevCum[family] {
				return Snapshot{}, fmt.Errorf("metrics: line %d: non-monotonic bucket in %s", line, family)
			}
			if c := cum - prevCum[family]; c > 0 {
				m.Buckets = append(m.Buckets, Bucket{Hi: hi, Count: c})
			}
			prevCum[family] = cum
		case histSuffix(name, "_sum", kinds):
			get(strings.TrimSuffix(name, "_sum"), KindHistogram).Sum = uint64(val)
		case histSuffix(name, "_count", kinds):
			get(strings.TrimSuffix(name, "_count"), KindHistogram).Count = uint64(val)
		default:
			kind, ok := kinds[name]
			if k, isCounter := kinds[strings.TrimSuffix(name, "_total")]; !ok && isCounter && k == KindCounter {
				kind = KindCounter
			} else if !ok {
				kind = KindGauge // untyped samples diff as gauges
			}
			get(name, kind).Value = val
		}
	}
	if err := sc.Err(); err != nil {
		return Snapshot{}, fmt.Errorf("metrics: read: %w", err)
	}
	if !sawEOF {
		return Snapshot{}, fmt.Errorf("metrics: missing # EOF terminator")
	}
	var out Snapshot
	for _, name := range order {
		out.Metrics = append(out.Metrics, *metrics[name])
	}
	return out, nil
}

// histSuffix reports whether name is a histogram sample of the given
// suffix, judged by the declared TYPE of the family it would imply.
func histSuffix(name, suffix string, kinds map[string]Kind) bool {
	if !strings.HasSuffix(name, suffix) {
		return false
	}
	return kinds[strings.TrimSuffix(name, suffix)] == KindHistogram
}

// labelValue extracts one label's unquoted value from a label body
// (`le="4096"`).
func labelValue(labels, key string) (string, bool) {
	for _, part := range strings.Split(labels, ",") {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 || kv[0] != key {
			continue
		}
		v := strings.TrimSpace(kv[1])
		v = strings.TrimPrefix(v, `"`)
		v = strings.TrimSuffix(v, `"`)
		return v, true
	}
	return "", false
}
