package metrics

import (
	"fmt"
	"io"
	"strings"
)

// WriteOpenMetrics renders the snapshot in the OpenMetrics text
// exposition format — the form a Prometheus scraper or promtool
// ingests directly, and the format `hpmmap-ledger diff` compares. It
// differs from WriteText in three spec-mandated ways:
//
//   - every metric family carries a `# HELP` line, sourced from
//     MetricHelp — i.e. from the Meaning column of the OBSERVABILITY.md
//     tables, the contract's machine-readable fourth leg;
//   - counter samples are exposed under `<family>_total`: the family
//     name drops the `_total` suffix of the internal name, and a
//     counter whose internal name lacks the suffix (hpmmap_bytes_mapped)
//     gains it on the sample;
//   - histograms emit cumulative `_bucket{le="..."}` samples ending in
//     the mandatory `le="+Inf"`, and the stream terminates with `# EOF`.
//
// Output is deterministic: families appear in snapshot order (sorted
// by name) and values use the same integer-exact formatting as
// WriteText.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	for _, m := range s.Metrics {
		family := m.Name
		if m.Kind == KindCounter {
			family = strings.TrimSuffix(family, "_total")
		}
		if help, ok := MetricHelp[m.Name]; ok {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, m.Kind); err != nil {
			return err
		}
		switch m.Kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s_total %s\n", family, formatValue(m.Value)); err != nil {
				return err
			}
		case KindHistogram:
			cum := uint64(0)
			for _, b := range m.Buckets {
				cum += b.Count
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", family, b.Hi, cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", family, m.Count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", family, m.Sum, family, m.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %s\n", family, formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "# EOF")
	return err
}

// escapeHelp applies the exposition format's HELP escaping (backslash
// and line feed); the doc-derived help strings contain neither today,
// but a future row must not corrupt the stream.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
