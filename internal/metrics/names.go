package metrics

// Canonical metric names. Every metric the simulator ships is declared
// here, documented in OBSERVABILITY.md, and cross-checked between the
// two by contract_test.go — add the constant, instrument the subsystem,
// and add the doc row together (see "How to add a metric" in
// OBSERVABILITY.md).
//
// Naming scheme: subsystem_name_unit, lower snake case. Counters end in
// _total (events) or a unit suffix such as _cycles / _pages / _bytes
// when they accumulate a quantity; gauges carry a bare unit; histograms
// name the observed unit (e.g. _cycles).
const (
	// fault_* — per-kind costs of faults taken by recorder-instrumented
	// processes (rank 0 in the fault studies), matching the Fig. 2/3
	// table populations byte-for-byte.
	FaultSmallFaultsTotal     = "fault_small_faults_total"
	FaultSmallCycles          = "fault_small_cycles"
	FaultLargeFaultsTotal     = "fault_large_faults_total"
	FaultLargeCycles          = "fault_large_cycles"
	FaultMergeFaultsTotal     = "fault_merge_faults_total"
	FaultMergeCycles          = "fault_merge_cycles"
	FaultHugeSmallFaultsTotal = "fault_hugetlb_small_faults_total"
	FaultHugeSmallCycles      = "fault_hugetlb_small_cycles"
	FaultHugeLargeFaultsTotal = "fault_hugetlb_large_faults_total"
	FaultHugeLargeCycles      = "fault_hugetlb_large_cycles"
	FaultStackFaultsTotal     = "fault_stack_faults_total"
	FaultStackCycles          = "fault_stack_cycles"

	// app_* — faults taken by every application (non-commodity) rank on
	// the node, regardless of recorder attachment or fidelity mode.
	AppFaultsTotal      = "app_faults_total"
	AppFaultCyclesTotal = "app_fault_cycles_total"
	AppFaultStallsTotal = "app_fault_stalls_total"

	// commodity_* — background (commodity) workload activity.
	CommodityFaultsTotal = "commodity_faults_total"

	// buddy_* — the buddy allocator(s); multi-zone pools aggregate
	// additively under the same names.
	BuddyAllocsTotal   = "buddy_allocs_total"
	BuddyFreesTotal    = "buddy_frees_total"
	BuddySplitsTotal   = "buddy_splits_total"
	BuddyMergesTotal   = "buddy_merges_total"
	BuddyFailuresTotal = "buddy_failures_total"
	BuddyFreeBytes     = "buddy_free_bytes"
	BuddyFragRatio     = "buddy_fragmentation_ratio"

	// pgtable_* — page-table construction and software walks.
	PgtableWalksTotal       = "pgtable_walks_total"
	PgtableWalkDepthLevels  = "pgtable_walk_depth_levels"
	PgtableTablePages       = "pgtable_table_pages"
	PgtableMappedSmallPages = "pgtable_mapped_small_pages"
	PgtableMappedLargePages = "pgtable_mapped_large_pages"

	// tlb_* — TLB reach model.
	TLBSmallHitsTotal   = "tlb_small_hits_total"
	TLBSmallMissesTotal = "tlb_small_misses_total"
	TLBLargeHitsTotal   = "tlb_large_hits_total"
	TLBLargeMissesTotal = "tlb_large_misses_total"
	TLBFlushesTotal     = "tlb_flushes_total"
	TLBPageFlushesTotal = "tlb_page_flushes_total"

	// kernel_* — node-level kernel activity (scheduler, reclaim, page
	// cache).
	KernelContextSwitchesTotal     = "kernel_context_switches_total"
	KernelSchedSegmentsTotal       = "kernel_sched_segments_total"
	KernelKswapdRunsTotal          = "kernel_kswapd_runs_total"
	KernelReclaimedPagesTotal      = "kernel_reclaimed_pages_total"
	KernelOOMKillsTotal            = "kernel_oom_kills_total"
	KernelPagecacheAllocFailsTotal = "kernel_pagecache_alloc_fails_total"
	KernelPagecachePages           = "kernel_pagecache_pages"
	KernelCommitPressure           = "kernel_commit_pressure"

	// linuxmm_* — the commodity Linux memory-manager model (THP and
	// HugeTLBfs paths).
	LinuxmmLargeFaultsTotal      = "linuxmm_large_faults_total"
	LinuxmmSmallFaultsTotal      = "linuxmm_small_faults_total"
	LinuxmmFallbackFaultsTotal   = "linuxmm_fallback_faults_total"
	LinuxmmCompactionsTotal      = "linuxmm_compactions_total"
	LinuxmmReclaimStormsTotal    = "linuxmm_reclaim_storms_total"
	LinuxmmReclaimStormsHPCTotal = "linuxmm_reclaim_storms_hpc_total"
	LinuxmmSplitOnMlockTotal     = "linuxmm_split_on_mlock_total"
	LinuxmmSwappedOutPagesTotal  = "linuxmm_swapped_out_pages_total"
	LinuxmmGatedAllocRunsTotal   = "linuxmm_gated_alloc_runs_total"
	LinuxmmGatedAllocBlocksTotal = "linuxmm_gated_alloc_blocks_total"
	LinuxmmRegionPoolReusesTotal = "linuxmm_region_pool_reuses_total"

	// thp_* — the khugepaged merge daemon.
	THPScansTotal        = "thp_scans_total"
	THPMergesTotal       = "thp_merges_total"
	THPFailedMergesTotal = "thp_failed_merges_total"

	// hpmmap_* — the HPMMAP lightweight manager.
	HPMMAPRegistrationsTotal = "hpmmap_registrations_total"
	HPMMAPMapCallsTotal      = "hpmmap_map_calls_total"
	HPMMAPUnmapCallsTotal    = "hpmmap_unmap_calls_total"
	HPMMAPBrkCallsTotal      = "hpmmap_brk_calls_total"
	HPMMAPBytesMapped        = "hpmmap_bytes_mapped"

	// bsp_* — the bulk-synchronous-parallel workload model. The
	// straggler metrics appear only when a run attaches a
	// timeline.Attribution (barrier critical-path attributor), so
	// baseline figure snapshots are unchanged.
	BSPBarriersTotal           = "bsp_barriers_total"
	BSPBarrierWaitCycles       = "bsp_barrier_wait_cycles"
	BSPStragglersTotal         = "bsp_stragglers_total"
	BSPStragglerLatenessCycles = "bsp_straggler_lateness_cycles"

	// cluster_* — the multi-node exchange model.
	ClusterExchangesTotal = "cluster_exchanges_total"
	ClusterCommCycles     = "cluster_comm_cycles"

	// sim_* — the discrete-event engine itself.
	SimEventsTotal = "sim_events_total"
	SimFinalCycles = "sim_final_cycles"

	// chaos_* — the deterministic fault injector (internal/chaos). Only
	// present when a run attaches an injector; chaos runs are never part
	// of the baseline figure pipeline.
	ChaosEventsTotal             = "chaos_events_total"
	ChaosPressureSpikesTotal     = "chaos_pressure_spikes_total"
	ChaosPressureSpikeBytesTotal = "chaos_pressure_spike_bytes_total"
	ChaosBuddyBurstsTotal        = "chaos_buddy_bursts_total"
	ChaosBuddyBurstPagesTotal    = "chaos_buddy_burst_pages_total"
	ChaosPagecacheFillsTotal     = "chaos_pagecache_fills_total"
	ChaosPagecacheFillBytesTotal = "chaos_pagecache_fill_bytes_total"
	ChaosSwapFillsTotal          = "chaos_swap_fills_total"
	ChaosSwapReservedPagesTotal  = "chaos_swap_reserved_pages_total"
	ChaosTLBStormsTotal          = "chaos_tlb_storms_total"
	ChaosTLBStormStallsTotal     = "chaos_tlb_storm_stalls_total"
	ChaosStragglersTotal         = "chaos_stragglers_total"
	ChaosStragglerCycles         = "chaos_straggler_cycles"
	ChaosNodeFailsTotal          = "chaos_node_fails_total"
	ChaosNodeFailCycles          = "chaos_node_fail_cycles"

	// kernel lifecycle fast-path counters (internal/kernel lifecycle.go).
	KernelLifecycleReapsTotal      = "kernel_lifecycle_reaps_total"
	KernelLifecycleProcReusesTotal = "kernel_lifecycle_proc_reuses_total"
	KernelLifecycleTaskReusesTotal = "kernel_lifecycle_task_reuses_total"

	// datacenter_* — the kubelet-style orchestration agent
	// (internal/datacenter). Present only when a run attaches an agent;
	// never part of the baseline figure pipeline.
	DatacenterPodsLaunchedTotal    = "datacenter_pods_launched_total"
	DatacenterPodsRejectedTotal    = "datacenter_pods_rejected_total"
	DatacenterPodsCompletedTotal   = "datacenter_pods_completed_total"
	DatacenterPodsOOMKilledTotal   = "datacenter_pods_oom_killed_total"
	DatacenterPodsRunning          = "datacenter_pods_running"
	DatacenterAdmittedBytes        = "datacenter_admitted_bytes"
	DatacenterPodTouchCycles       = "datacenter_pod_touch_cycles"
	DatacenterPodsEvictedTotal     = "datacenter_pods_evicted_total"
	DatacenterPodsRestartedTotal   = "datacenter_pods_restarted_total"
	DatacenterPodsRescheduledTotal = "datacenter_pods_rescheduled_total"
	DatacenterEvictionPassesTotal  = "datacenter_eviction_passes_total"
	DatacenterPodBackoffCycles     = "datacenter_pod_backoff_cycles"

	// invariant_* — the opt-in consistency auditor (internal/invariant).
	InvariantChecksTotal     = "invariant_checks_total"
	InvariantViolationsTotal = "invariant_violations_total"

	// runner_* — plan-level orchestration health (internal/runner).
	// These live in the plan registry, not per-cell registries, so they
	// appear exactly once in a merged snapshot.
	RunnerCacheCorruptTotal = "runner_cache_corrupt_total"
	RunnerCellsFailedTotal  = "runner_cells_failed_total"
	RunnerCellRetriesTotal  = "runner_cell_retries_total"

	// runner_ledger_* — the run journal (internal/ledger). Records
	// counts only the canonical projection: host-annex record counts
	// vary with cache state and worker scheduling, and a counter that
	// varies would break the merged snapshot's byte-identity contract.
	RunnerLedgerRecordsTotal = "runner_ledger_records_total"
	RunnerLedgerPlansTotal   = "runner_ledger_plans_total"

	// timeline_* — the deterministic time-series sampler
	// (internal/timeline). Present only when a run attaches a Series.
	TimelineSamplesTotal = "timeline_samples_total"
)
