package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ChromeTracer records structured simulation events and renders them in
// the Chrome trace-event JSON format, loadable in chrome://tracing and
// Perfetto (ui.perfetto.dev). Timestamps are simulated cycles converted
// to microseconds through the machine clock set with SetClock, so the
// trace timeline reads in simulated wall time.
//
// Like the rest of the package, a nil *ChromeTracer is the no-op
// default: every method is nil-safe, so call sites can be left in place
// unconditionally. A tracer belongs to one simulation cell and is not
// safe for concurrent use; WriteChromeTrace merges per-cell tracers
// deterministically in argument order.
type ChromeTracer struct {
	pid     int
	clockHz float64
	events  []chromeEvent
	threads map[int]string
	process string
}

// chromeEvent is one recorded trace event, timestamped in cycles and
// converted to microseconds at write time.
type chromeEvent struct {
	ph       byte // 'X' complete, 'i' instant, 'C' counter
	tid      int
	cat      string
	name     string
	at       uint64 // cycles
	dur      uint64 // cycles, 'X' only
	val      float64
	hasValue bool
}

// NewChromeTracer returns a tracer whose events carry the given Chrome
// trace pid (the experiment runner uses the cell index, so multi-cell
// traces group by cell in the UI).
func NewChromeTracer(pid int) *ChromeTracer {
	return &ChromeTracer{pid: pid, clockHz: 1e9, threads: make(map[int]string)}
}

// SetClock sets the simulated clock frequency used to convert cycle
// timestamps to trace microseconds. Defaults to 1 GHz; experiment rigs
// set it from the machine config. No-op on a nil tracer.
func (t *ChromeTracer) SetClock(hz float64) {
	if t == nil || hz <= 0 {
		return
	}
	t.clockHz = hz
}

// SetProcessName labels this tracer's pid in the trace UI (e.g.
// "fig7/minimd/isolated/c8"). No-op on a nil tracer.
func (t *ChromeTracer) SetProcessName(name string) {
	if t == nil {
		return
	}
	t.process = name
}

// SetThreadName labels a tid in the trace UI (e.g. "rank 3",
// "kswapd"). No-op on a nil tracer.
func (t *ChromeTracer) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.threads[tid] = name
}

// Complete records a duration ('X') event spanning [start, start+dur]
// cycles on thread tid. No-op on a nil tracer.
func (t *ChromeTracer) Complete(tid int, cat, name string, start, dur uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, chromeEvent{ph: 'X', tid: tid, cat: cat, name: name, at: start, dur: dur})
}

// Instant records a point-in-time ('i') event at cycle at on thread
// tid. No-op on a nil tracer.
func (t *ChromeTracer) Instant(tid int, cat, name string, at uint64) {
	if t == nil {
		return
	}
	t.events = append(t.events, chromeEvent{ph: 'i', tid: tid, cat: cat, name: name, at: at})
}

// Value records a counter ('C') sample, rendered by trace viewers as a
// stepped time series. No-op on a nil tracer.
func (t *ChromeTracer) Value(tid int, cat, name string, at uint64, v float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, chromeEvent{ph: 'C', tid: tid, cat: cat, name: name, at: at, val: v, hasValue: true})
}

// Len returns the number of recorded events (0 on a nil tracer).
func (t *ChromeTracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// usec converts a cycle timestamp to trace microseconds with fixed
// 3-decimal formatting so output is deterministic.
func (t *ChromeTracer) usec(cycles uint64) string {
	return strconv.FormatFloat(float64(cycles)/t.clockHz*1e6, 'f', 3, 64)
}

// WriteChromeTrace renders the tracers' combined events as one Chrome
// trace-event JSON object ({"traceEvents": [...]}). Nil tracers in the
// list are skipped; events are written grouped by tracer in argument
// order and in recording order within each tracer, which makes output
// byte-identical across runner worker counts (cells record
// single-threaded, and callers pass tracers in cell order).
func WriteChromeTrace(w io.Writer, tracers ...*ChromeTracer) error {
	if _, err := io.WriteString(w, "{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(line string) error {
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err := io.WriteString(w, line)
		return err
	}
	for _, t := range tracers {
		if t == nil {
			continue
		}
		if t.process != "" {
			line := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%s}}`,
				t.pid, quote(t.process))
			if err := emit(line); err != nil {
				return err
			}
		}
		tids := make([]int, 0, len(t.threads))
		for tid := range t.threads {
			tids = append(tids, tid)
		}
		sort.Ints(tids)
		for _, tid := range tids {
			line := fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
				t.pid, tid, quote(t.threads[tid]))
			if err := emit(line); err != nil {
				return err
			}
		}
		for _, e := range t.events {
			var line string
			switch e.ph {
			case 'X':
				line = fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"cat":%s,"name":%s,"ts":%s,"dur":%s}`,
					t.pid, e.tid, quote(e.cat), quote(e.name), t.usec(e.at), t.usec(e.dur))
			case 'i':
				line = fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"cat":%s,"name":%s,"ts":%s,"s":"t"}`,
					t.pid, e.tid, quote(e.cat), quote(e.name), t.usec(e.at))
			case 'C':
				line = fmt.Sprintf(`{"ph":"C","pid":%d,"tid":%d,"cat":%s,"name":%s,"ts":%s,"args":{"value":%s}}`,
					t.pid, e.tid, quote(e.cat), quote(e.name), t.usec(e.at),
					strconv.FormatFloat(e.val, 'f', -1, 64))
			}
			if err := emit(line); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}

// quote JSON-quotes a trace string (names and categories are plain
// ASCII identifiers in practice; this escapes the rest defensively).
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b.WriteByte('\\')
			b.WriteByte(c)
		case c < 0x20:
			fmt.Fprintf(&b, `\u%04x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
