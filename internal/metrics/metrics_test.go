package metrics

import (
	"math"
	"math/bits"
	"strings"
	"testing"
)

// TestBucketBounds pins the fixed log2 bucket layout documented in
// OBSERVABILITY.md: bucket 0 holds exactly 0, bucket i holds
// [2^(i-1), 2^i - 1], and the last bucket tops out at MaxUint64.
func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{63, 1 << 62, 1<<63 - 1},
		{64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		lo, hi := BucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d, %d], want [%d, %d]", c.i, lo, hi, c.lo, c.hi)
		}
	}
}

// TestHistogramBucketBoundaries drives observations at every power-of-two
// boundary and checks each lands in the bucket whose bounds contain it.
func TestHistogramBucketBoundaries(t *testing.T) {
	var values []uint64
	values = append(values, 0, math.MaxUint64)
	for s := 0; s < 64; s++ {
		v := uint64(1) << s
		values = append(values, v, v-1, v+1)
	}
	h := &Histogram{}
	for _, v := range values {
		h.Observe(v)
	}
	if got, want := h.Count(), uint64(len(values)); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
	// Rebuild the expected per-bucket counts from the documented rule.
	var want [NumBuckets]uint64
	for _, v := range values {
		want[bits.Len64(v)]++
	}
	for i, c := range h.buckets {
		if c != want[i] {
			t.Errorf("bucket %d count = %d, want %d", i, c, want[i])
		}
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		for _, v := range values {
			if bits.Len64(v) == i && (v < lo || v > hi) {
				t.Errorf("value %d bucketed into %d but outside its bounds [%d, %d]", v, i, lo, hi)
			}
		}
	}
	// The snapshot view must agree with the raw buckets and bounds.
	r := NewRegistry()
	sh := r.Histogram("test_snapshot_cycles")
	for _, v := range values {
		sh.Observe(v)
	}
	m, ok := r.Snapshot().Get("test_snapshot_cycles")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	var total uint64
	for _, b := range m.Buckets {
		if b.Lo > b.Hi {
			t.Errorf("bucket [%d, %d] inverted", b.Lo, b.Hi)
		}
		total += b.Count
	}
	if total != m.Count {
		t.Errorf("bucket counts sum to %d, Count = %d", total, m.Count)
	}
}

// TestNilHandlesAreNoOps pins the package's central contract: every
// handle type accepts calls on a nil receiver.
func TestNilHandlesAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Error("nil Counter.Value != 0")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil Gauge.Value != 0")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil Histogram not empty")
	}
	var r *Registry
	if r.Counter("x_total") != nil || r.Gauge("x_bytes") != nil || r.Histogram("x_cycles") != nil {
		t.Error("nil Registry accessors must return nil handles")
	}
	r.CounterFunc("x_total", func() uint64 { return 1 })
	r.GaugeFunc("x_bytes", func() float64 { return 1 })
	if len(r.Snapshot().Metrics) != 0 {
		t.Error("nil Registry snapshot not empty")
	}
	var tr *ChromeTracer
	tr.SetClock(1e9)
	tr.SetProcessName("p")
	tr.SetThreadName(0, "t")
	tr.Complete(0, "c", "n", 0, 1)
	tr.Instant(0, "c", "n", 0)
	tr.Value(0, "c", "n", 0, 1)
	if tr.Len() != 0 {
		t.Error("nil tracer recorded events")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("dual_use_total")
	r.Gauge("dual_use_total")
}

func TestValidateName(t *testing.T) {
	for _, ok := range []string{"a", "fault_small_faults_total", "x2_total"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "Fault_total", "_x", "2x", "a-b", "a.b"} {
		if err := ValidateName(bad); err == nil {
			t.Errorf("ValidateName(%q) = nil, want error", bad)
		}
	}
}

// TestAdditivePullRegistration pins the multi-zone / multi-node
// aggregation semantics: same-name pull sources sum at snapshot time,
// and a push handle adds on top.
func TestAdditivePullRegistration(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("zone_allocs_total", func() uint64 { return 10 })
	r.CounterFunc("zone_allocs_total", func() uint64 { return 32 })
	r.Counter("zone_allocs_total").Add(100)
	r.GaugeFunc("zone_free_bytes", func() float64 { return 1.5 })
	r.GaugeFunc("zone_free_bytes", func() float64 { return 2.5 })
	s := r.Snapshot()
	if got := s.CounterValue("zone_allocs_total"); got != 142 {
		t.Errorf("additive counter = %d, want 142", got)
	}
	if m, _ := s.Get("zone_free_bytes"); m.Value != 4 {
		t.Errorf("additive gauge = %v, want 4", m.Value)
	}
}

func TestMerge(t *testing.T) {
	mk := func(cv uint64, hist []uint64) Snapshot {
		r := NewRegistry()
		r.Counter("m_total").Add(cv)
		h := r.Histogram("m_cycles")
		for _, v := range hist {
			h.Observe(v)
		}
		return r.Snapshot()
	}
	a := mk(3, []uint64{1, 100})
	b := mk(4, []uint64{100, 1 << 40})
	m := Merge(a, b)
	if got := m.CounterValue("m_total"); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	h, ok := m.Get("m_cycles")
	if !ok || h.Count != 4 || h.Sum != 1+100+100+1<<40 {
		t.Errorf("merged histogram count/sum = %d/%d", h.Count, h.Sum)
	}
	var total uint64
	for _, bk := range h.Buckets {
		total += bk.Count
	}
	if total != 4 {
		t.Errorf("merged buckets sum to %d, want 4", total)
	}
	// Merging must preserve name ordering.
	for i := 1; i < len(m.Metrics); i++ {
		if m.Metrics[i-1].Name >= m.Metrics[i].Name {
			t.Errorf("merged snapshot unsorted: %q >= %q", m.Metrics[i-1].Name, m.Metrics[i].Name)
		}
	}
}

// TestMergeGaugeModes: additive gauges sum across cells, MergeMax
// gauges (ratio/pressure-style) take the worst cell, and the mode is
// stamped into snapshots and survives the merge.
func TestMergeGaugeModes(t *testing.T) {
	mk := func(pressure, bytes float64) Snapshot {
		r := NewRegistry()
		r.Gauge(KernelCommitPressure).Set(pressure)
		r.Gauge("zone_free_bytes").Set(bytes)
		return r.Snapshot()
	}
	a, b := mk(0.9, 100), mk(0.4, 50)
	if m, _ := a.Get(KernelCommitPressure); m.MergeMode != MergeMax {
		t.Fatalf("snapshot did not stamp merge mode: %q", m.MergeMode)
	}
	if m, _ := a.Get("zone_free_bytes"); m.MergeMode != MergeSum {
		t.Fatalf("additive gauge stamped %q, want empty", m.MergeMode)
	}
	merged := Merge(a, b)
	if m, _ := merged.Get(KernelCommitPressure); m.Value != 0.9 {
		t.Errorf("max-merged pressure = %v, want 0.9", m.Value)
	}
	if m, _ := merged.Get(KernelCommitPressure); m.MergeMode != MergeMax {
		t.Errorf("merge dropped the mode stamp")
	}
	if m, _ := merged.Get("zone_free_bytes"); m.Value != 150 {
		t.Errorf("sum-merged bytes = %v, want 150", m.Value)
	}
}

// TestMergeGaugeModeFallback: snapshots cached before the MergeMode
// field existed carry no stamp; Merge must fall back to the
// GaugeMergeModes table by name so old cache entries still merge as max.
func TestMergeGaugeModeFallback(t *testing.T) {
	unstamped := func(v float64) Snapshot {
		return Snapshot{Metrics: []Metric{{Name: KernelCommitPressure, Kind: KindGauge, Value: v}}}
	}
	m := Merge(unstamped(0.7), unstamped(0.2))
	got, _ := m.Get(KernelCommitPressure)
	if got.Value != 0.7 {
		t.Errorf("fallback max-merge = %v, want 0.7", got.Value)
	}
	if got.MergeMode != MergeMax {
		t.Errorf("fallback did not stamp the output: %q", got.MergeMode)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(5)
	r.Gauge("b_ratio").Set(0.25)
	h := r.Histogram("c_cycles")
	h.Observe(1)
	h.Observe(2)
	var b strings.Builder
	if err := r.Snapshot().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE a_total counter\n" +
		"a_total 5\n" +
		"# TYPE b_ratio gauge\n" +
		"b_ratio 0.250000\n" +
		"# TYPE c_cycles histogram\n" +
		"c_cycles_bucket{le=\"1\"} 1\n" +
		"c_cycles_bucket{le=\"3\"} 2\n" +
		"c_cycles_sum 3\nc_cycles_count 2\n"
	if b.String() != want {
		t.Errorf("WriteText:\n%s\nwant:\n%s", b.String(), want)
	}
}

// TestUninstrumentedPathAllocates0 asserts the no-op contract with
// testing.AllocsPerRun: the exact call pattern of the fault hot path —
// nil counter increments, nil histogram observation, nil tracer event —
// performs zero allocations.
func TestUninstrumentedPathAllocates0(t *testing.T) {
	var (
		c  *Counter
		h  *Histogram
		tr *ChromeTracer
	)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(1768)
		tr.Complete(1, "fault", "small", 100, 1768)
		tr.Instant(0, "kernel", "kswapd", 100)
	})
	if allocs != 0 {
		t.Fatalf("uninstrumented hot path allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkUninstrumentedFault measures the no-op fast path referenced
// by OBSERVABILITY.md: the per-fault instrumentation pattern against
// nil handles. Must report 0 B/op.
func BenchmarkUninstrumentedFault(b *testing.B) {
	var (
		c  *Counter
		h  *Histogram
		tr *ChromeTracer
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(uint64(i))
		tr.Complete(1, "fault", "small", uint64(i), 1768)
	}
}

// BenchmarkInstrumentedFault is the companion: the same pattern against
// live handles (counter add + histogram bucket). Observation itself is
// allocation-free; only the tracer's event append amortizes slice growth.
func BenchmarkInstrumentedFault(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("fault_small_faults_total")
	h := r.Histogram("fault_small_cycles")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
		h.Observe(uint64(i))
	}
}
