package metrics

// The instrumentation contract of OBSERVABILITY.md, enforced: every
// metric must exist in three places at once —
//
//  1. a named string constant in names.go,
//  2. a table row in OBSERVABILITY.md (at the repository root),
//  3. at least one use of the constant in the non-test source tree.
//
// This test parses names.go, scans the doc's metric tables, and greps
// the repository for `metrics.<Const>` references, failing with a
// precise message for whichever leg is missing. names.go's package
// comment points here; OBSERVABILITY.md's "How to add a metric" recipe
// is the fix for any failure.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// parseNameConstants returns ident -> metric-name for every string
// constant declared in names.go.
func parseNameConstants(t *testing.T) map[string]string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "names.go", nil, 0)
	if err != nil {
		t.Fatalf("parse names.go: %v", err)
	}
	consts := make(map[string]string)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				lit, ok := vs.Values[i].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				v, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquote %s: %v", lit.Value, err)
				}
				consts[name.Name] = v
			}
		}
	}
	if len(consts) == 0 {
		t.Fatal("no metric-name constants found in names.go")
	}
	return consts
}

// docTableRow matches a metric-table row of OBSERVABILITY.md:
// "| `metric_name` | kind | ...". Prose mentions of metric names are
// deliberately not matched — only table rows count as documentation.
var docTableRow = regexp.MustCompile("^\\| `([a-z][a-z0-9_]*)` \\| (counter|gauge|histogram) \\|")

// docMetricRows returns metric-name -> kind for every table row of
// OBSERVABILITY.md.
func docMetricRows(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	rows := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		m := docTableRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if _, dup := rows[m[1]]; dup {
			t.Errorf("OBSERVABILITY.md documents %q twice", m[1])
		}
		rows[m[1]] = m[2]
	}
	if len(rows) == 0 {
		t.Fatal("no metric table rows found in OBSERVABILITY.md")
	}
	return rows
}

// TestEveryConstantIsDocumented: names.go -> OBSERVABILITY.md.
func TestEveryConstantIsDocumented(t *testing.T) {
	consts := parseNameConstants(t)
	rows := docMetricRows(t)
	for ident, name := range consts {
		if _, ok := rows[name]; !ok {
			t.Errorf("metrics.%s = %q has no table row in OBSERVABILITY.md (add one — see \"How to add a metric\")", ident, name)
		}
	}
}

// TestEveryDocRowHasAConstant: OBSERVABILITY.md -> names.go.
func TestEveryDocRowHasAConstant(t *testing.T) {
	consts := parseNameConstants(t)
	byValue := make(map[string]bool, len(consts))
	for _, name := range consts {
		byValue[name] = true
	}
	for name := range docMetricRows(t) {
		if !byValue[name] {
			t.Errorf("OBSERVABILITY.md documents %q but names.go declares no such constant", name)
		}
	}
}

// TestEveryConstantIsUsed: names.go -> the source tree. A metric that
// no subsystem ever feeds is dead weight in the contract.
func TestEveryConstantIsUsed(t *testing.T) {
	consts := parseNameConstants(t)
	used := make(map[string]bool, len(consts))
	root := filepath.Join("..", "..")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		src := string(data)
		for ident := range consts {
			if used[ident] {
				continue
			}
			if strings.Contains(src, "metrics."+ident) {
				used[ident] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for ident, name := range consts {
		if !used[ident] {
			t.Errorf("metrics.%s (%q) is declared and documented but never used outside tests", ident, name)
		}
	}
}

// TestConstantNamesFollowScheme: every declared name passes the
// ValidateName scheme the registry enforces at runtime.
func TestConstantNamesFollowScheme(t *testing.T) {
	for ident, name := range parseNameConstants(t) {
		if err := ValidateName(name); err != nil {
			t.Errorf("metrics.%s: %v", ident, err)
		}
	}
}

// docMergeMaxRows returns the set of metric names whose OBSERVABILITY.md
// table row carries the "(merge: max)" annotation.
func docMergeMaxRows(t *testing.T) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	out := make(map[string]bool)
	for _, line := range strings.Split(string(data), "\n") {
		m := docTableRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if strings.Contains(line, "(merge: max)") {
			out[m[1]] = true
		}
	}
	return out
}

// TestGaugeMergeModesMatchDoc: the merge-mode map, the doc annotation
// and the table's kind column agree. Every MergeMax gauge must carry
// "(merge: max)" in its doc row (and be documented as a gauge — merge
// modes are a gauge-only concept), and every annotated row must be in
// the map; a drift in either direction fails with the missing leg.
func TestGaugeMergeModesMatchDoc(t *testing.T) {
	rows := docMetricRows(t)
	annotated := docMergeMaxRows(t)
	for name, mode := range GaugeMergeModes {
		if mode != MergeMax {
			continue
		}
		kind, ok := rows[name]
		if !ok {
			t.Errorf("GaugeMergeModes tags %q but OBSERVABILITY.md has no table row for it", name)
			continue
		}
		if kind != "gauge" {
			t.Errorf("GaugeMergeModes tags %q but the doc documents it as a %s (merge modes apply to gauges only)", name, kind)
		}
		if !annotated[name] {
			t.Errorf("GaugeMergeModes tags %q MergeMax but its OBSERVABILITY.md row lacks the \"(merge: max)\" annotation", name)
		}
	}
	for name := range annotated {
		if GaugeMergeModes[name] != MergeMax {
			t.Errorf("OBSERVABILITY.md annotates %q \"(merge: max)\" but GaugeMergeModes does not tag it", name)
		}
	}
}

// docMeaningRow additionally captures the Meaning column, for the
// HELP-line leg of the contract.
var docMeaningRow = regexp.MustCompile("^\\| `([a-z][a-z0-9_]*)` \\| (?:counter|gauge|histogram) \\| (.*) \\|$")

// docMeanings returns metric-name -> HELP text (the Meaning column
// with backticks stripped — exactly what WriteOpenMetrics must emit).
func docMeanings(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatalf("read OBSERVABILITY.md: %v", err)
	}
	out := make(map[string]string)
	for _, line := range strings.Split(string(data), "\n") {
		m := docMeaningRow.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		out[m[1]] = strings.ReplaceAll(strings.TrimSpace(m[2]), "`", "")
	}
	if len(out) == 0 {
		t.Fatal("no meaning columns found in OBSERVABILITY.md")
	}
	return out
}

// TestHelpDerivedFromDoc is the fourth contract leg, both directions:
// every declared metric has a MetricHelp entry whose text is exactly
// its OBSERVABILITY.md Meaning column (backticks stripped), and every
// MetricHelp key is a declared metric. The doc table is the source of
// truth for `# HELP` exposition lines — edit the row, then mirror it
// in help.go.
func TestHelpDerivedFromDoc(t *testing.T) {
	consts := parseNameConstants(t)
	meanings := docMeanings(t)
	byValue := make(map[string]bool, len(consts))
	for _, name := range consts {
		byValue[name] = true
		help, ok := MetricHelp[name]
		if !ok {
			t.Errorf("metrics.MetricHelp lacks an entry for %q (help.go mirrors the OBSERVABILITY.md Meaning column)", name)
			continue
		}
		want, ok := meanings[name]
		if !ok {
			continue // TestEveryConstantIsDocumented reports the missing row
		}
		if help != want {
			t.Errorf("MetricHelp[%q] = %q, but the OBSERVABILITY.md Meaning column reads %q", name, help, want)
		}
	}
	for name := range MetricHelp {
		if !byValue[name] {
			t.Errorf("MetricHelp documents %q but names.go declares no such constant", name)
		}
	}
}

// TestMergeMaxAnnotationReachesHelp: the "(merge: max)" doc annotation
// must survive into the HELP text, so an OpenMetrics consumer sees the
// fold semantics without reading this repository.
func TestMergeMaxAnnotationReachesHelp(t *testing.T) {
	for name, mode := range GaugeMergeModes {
		if mode != MergeMax {
			continue
		}
		if !strings.Contains(MetricHelp[name], "(merge: max)") {
			t.Errorf("MetricHelp[%q] = %q lacks the \"(merge: max)\" annotation", name, MetricHelp[name])
		}
	}
}
