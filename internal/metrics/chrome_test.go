package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceGolden pins the exact trace-event JSON emitted for a
// small fixed scenario: metadata first (process name, thread names in
// tid order), then events in recording order, timestamps converted at
// the configured clock with fixed 3-decimal microseconds. Any change to
// this output invalidates saved traces, so it is compared byte-for-byte.
func TestChromeTraceGolden(t *testing.T) {
	tr := NewChromeTracer(3)
	tr.SetClock(1e6) // 1 MHz: 1 cycle == 1 microsecond, for readable ts
	tr.SetProcessName("fig7 HPCCG/A/thp/c2#0")
	tr.SetThreadName(1, "rank0")
	tr.SetThreadName(0, "kernel")
	tr.Complete(1, "fault", "small", 10, 5)
	tr.Instant(0, "kernel", "kswapd/zone0", 20)
	tr.Value(0, "sim", "pressure", 30, 0.5)

	var b strings.Builder
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	want := `{"traceEvents":[
{"ph":"M","pid":3,"tid":0,"name":"process_name","args":{"name":"fig7 HPCCG/A/thp/c2#0"}},
{"ph":"M","pid":3,"tid":0,"name":"thread_name","args":{"name":"kernel"}},
{"ph":"M","pid":3,"tid":1,"name":"thread_name","args":{"name":"rank0"}},
{"ph":"X","pid":3,"tid":1,"cat":"fault","name":"small","ts":10.000,"dur":5.000},
{"ph":"i","pid":3,"tid":0,"cat":"kernel","name":"kswapd/zone0","ts":20.000,"s":"t"},
{"ph":"C","pid":3,"tid":0,"cat":"sim","name":"pressure","ts":30.000,"args":{"value":0.5}}
]}
`
	if got := b.String(); got != want {
		t.Errorf("trace output:\n%s\nwant:\n%s", got, want)
	}
	if !json.Valid([]byte(b.String())) {
		t.Error("trace output is not valid JSON")
	}
}

// TestChromeTraceEmptyAndNil: an empty call and nil tracers still yield
// a valid (empty) trace document.
func TestChromeTraceEmptyAndNil(t *testing.T) {
	var b strings.Builder
	if err := WriteChromeTrace(&b, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Errorf("empty trace invalid JSON: %q", b.String())
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty trace has %d events", len(doc.TraceEvents))
	}
}

// TestChromeTraceQuoting: names with quotes, backslashes and control
// characters must be escaped into valid JSON.
func TestChromeTraceQuoting(t *testing.T) {
	tr := NewChromeTracer(0)
	tr.SetProcessName("a\"b\\c\nd")
	tr.Instant(0, "cat\"", "name\t", 1)
	var b strings.Builder
	if err := WriteChromeTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(b.String())) {
		t.Errorf("escaped trace invalid JSON: %q", b.String())
	}
}

// TestChromeTraceMultiTracerOrder: tracers are written in argument
// order regardless of pid, which is what makes merged multi-cell traces
// deterministic when the collector passes them in cell-index order.
func TestChromeTraceMultiTracerOrder(t *testing.T) {
	t1 := NewChromeTracer(7)
	t1.Instant(0, "c", "first", 1)
	t2 := NewChromeTracer(2)
	t2.Instant(0, "c", "second", 1)
	var a, b strings.Builder
	if err := WriteChromeTrace(&a, t1, t2); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, t1, t2); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("trace output not deterministic across writes")
	}
	if i, j := strings.Index(a.String(), `"first"`), strings.Index(a.String(), `"second"`); i < 0 || j < 0 || i > j {
		t.Errorf("events not in argument order: first@%d second@%d", i, j)
	}
}
