// Package runner is the experiment-orchestration subsystem: a declarative
// run plan (an experiment name plus a grid of independent cells) executed
// by a bounded worker pool with deterministic per-cell seeding.
//
// The design contract, relied on by every figure harness in
// internal/experiments:
//
//   - A Cell's PRNG seed is a pure function of the plan's base seed and
//     the cell's coordinates (bench/profile/manager/cores/run-index),
//     derived through a SplitMix64 finalizer chain — never from execution
//     order. Results are therefore byte-identical at any worker count,
//     including 1.
//   - Results are returned indexed by the cell's position in Plan.Cells,
//     so reducers fold them in declaration order regardless of which
//     worker finished first.
//   - Progress events are emitted through a single serialized sink: the
//     Progress callback is never invoked concurrently with itself, so
//     consumers may write to unsynchronized state (a terminal, a log
//     line buffer) without locking.
//   - The first cell error cancels the remaining cells and is returned;
//     worker panics are contained and converted into errors.
//   - Per-cell results can be memoized on disk (Cache) and instrumented
//     (Observations hands each cell a private metrics registry and
//     Chrome tracer, then merges them in cell-index order — see
//     OBSERVABILITY.md at the repository root).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Cell is one point of an experiment grid. The string/int coordinates
// identify the cell uniquely within its experiment; they feed both the
// deterministic seed derivation (Seed) and the result-cache key.
type Cell struct {
	// Exp names the experiment ("fig7", "fig8", "faultstudy", ...).
	Exp string
	// Bench is the benchmark name ("HPCCG", "miniMD", ...).
	Bench string
	// Profile is the commodity-load profile ("none", "A", ... ).
	Profile string
	// Manager is the memory-manager key ("thp", "hugetlbfs", "hpmmap").
	Manager string
	// Variant is an optional extra coordinate for experiments with an
	// axis beyond the standard five (noise base/noisy, sweep knob value).
	Variant string
	// Cores is the core count (single node) or rank count (cluster).
	Cores int
	// Run is the repetition index within the cell's coordinates.
	Run int
}

// String renders the cell compactly for progress lines and errors.
func (c Cell) String() string {
	s := c.Exp
	if c.Bench != "" {
		s += " " + c.Bench
	}
	if c.Profile != "" {
		s += "/" + c.Profile
	}
	if c.Manager != "" {
		s += "/" + c.Manager
	}
	if c.Variant != "" {
		s += "/" + c.Variant
	}
	s += fmt.Sprintf("/c%d#%d", c.Cores, c.Run)
	return s
}

// Plan is a named experiment: a base seed and a grid of independent cells.
type Plan struct {
	Name  string
	Seed  uint64
	Cells []Cell
}

// Event is one progress notification. Events are delivered in completion
// order through the serialized sink; Done counts completed cells.
type Event struct {
	Plan string
	// Cell that just completed (or failed); Index is its position in
	// Plan.Cells.
	Cell  Cell
	Index int
	// Done of Total cells have completed.
	Done, Total int
	// Elapsed is the wall-clock time since the executor started; ETA
	// extrapolates the remaining time from the mean cell rate so far.
	Elapsed, ETA time.Duration
	// Result is the cell function's returned value (nil on error).
	Result any
	// Err is the cell's error, if any.
	Err error
}

// String renders a progress line with done/total and ETA.
func (e Event) String() string {
	s := fmt.Sprintf("%s %d/%d (ETA %s) %s", e.Plan, e.Done, e.Total,
		e.ETA.Round(time.Second), e.Cell)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Options configures an execution.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects runtime.NumCPU().
	Workers int
	// Context cancels the run; nil means context.Background(). The
	// context handed to cell functions is cancelled on the first cell
	// error as well.
	Context context.Context
	// Progress, when non-nil, receives one event per completed cell
	// through a serialized sink: invocations never overlap, so the
	// callback may touch unsynchronized state.
	Progress func(Event)
}

// CellFunc computes one cell. idx is the cell's position in Plan.Cells;
// seed is the cell's coordinate-derived PRNG seed. The function must not
// retain ctx past its return and must be safe to call concurrently with
// itself on different cells.
type CellFunc[T any] func(ctx context.Context, idx int, cell Cell, seed uint64) (T, error)

// Run executes every cell of the plan on a bounded worker pool and
// returns the results indexed by cell position. The first error cancels
// the remaining cells and is returned (cells already running finish or
// observe ctx cancellation). A nil error means every cell completed.
func Run[T any](opts Options, plan Plan, fn CellFunc[T]) ([]T, error) {
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(plan.Cells) {
		workers = len(plan.Cells)
	}
	results := make([]T, len(plan.Cells))
	if len(plan.Cells) == 0 {
		return results, parent.Err()
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	var (
		mu       sync.Mutex // serializes progress + first-error recording
		firstErr error
		done     int
		start    = time.Now()
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	emit := func(idx int, res any, err error) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if opts.Progress == nil {
			return
		}
		elapsed := time.Since(start)
		var eta time.Duration
		if rem := len(plan.Cells) - done; rem > 0 && done > 0 {
			eta = time.Duration(float64(elapsed) / float64(done) * float64(rem))
		}
		opts.Progress(Event{
			Plan: plan.Name, Cell: plan.Cells[idx], Index: idx,
			Done: done, Total: len(plan.Cells),
			Elapsed: elapsed, ETA: eta,
			Result: res, Err: err,
		})
	}

	// runCell contains panics so one bad cell cannot take down the
	// process; the recovered value becomes the cell's error.
	runCell := func(idx int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("runner: panic in cell %s: %v\n%s",
					plan.Cells[idx], r, debug.Stack())
			}
		}()
		return fn(ctx, idx, plan.Cells[idx], plan.Cells[idx].Seed(plan.Seed))
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain without executing
				}
				out, err := runCell(idx)
				if err != nil {
					fail(fmt.Errorf("%s: %w", plan.Cells[idx], err))
					emit(idx, nil, err)
					continue
				}
				results[idx] = out
				emit(idx, out, nil)
			}
		}()
	}
	for idx := range plan.Cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return results, err
	}
	if cerr := parent.Err(); cerr != nil {
		return results, cerr
	}
	return results, nil
}
