// Package runner is the experiment-orchestration subsystem: a declarative
// run plan (an experiment name plus a grid of independent cells) executed
// by a bounded worker pool with deterministic per-cell seeding.
//
// The design contract, relied on by every figure harness in
// internal/experiments:
//
//   - A Cell's PRNG seed is a pure function of the plan's base seed and
//     the cell's coordinates (bench/profile/manager/cores/run-index),
//     derived through a SplitMix64 finalizer chain — never from execution
//     order. Results are therefore byte-identical at any worker count,
//     including 1.
//   - Results are returned indexed by the cell's position in Plan.Cells,
//     so reducers fold them in declaration order regardless of which
//     worker finished first.
//   - Progress events are emitted through a single serialized sink: the
//     Progress callback is never invoked concurrently with itself, so
//     consumers may write to unsynchronized state (a terminal, a log
//     line buffer) without locking.
//   - The first cell error cancels the remaining cells and is returned;
//     worker panics are contained and converted into errors whose cause
//     chain is preserved (a structured invariant.Violation survives the
//     recovery). Options.ContinueOnError flips the policy: failed cells
//     are quarantined as holes and reported together in a *GridError
//     while every other cell still runs. Options.CellTimeout bounds a
//     cell's wall clock; Options.Retries re-runs host-transient
//     failures (marked via Transient).
//   - Per-cell results can be memoized on disk (Cache) and instrumented
//     (Observations hands each cell a private metrics registry and
//     Chrome tracer, then merges them in cell-index order — see
//     OBSERVABILITY.md at the repository root).
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
)

// Cell is one point of an experiment grid. The string/int coordinates
// identify the cell uniquely within its experiment; they feed both the
// deterministic seed derivation (Seed) and the result-cache key.
type Cell struct {
	// Exp names the experiment ("fig7", "fig8", "faultstudy", ...).
	Exp string
	// Bench is the benchmark name ("HPCCG", "miniMD", ...).
	Bench string
	// Profile is the commodity-load profile ("none", "A", ... ).
	Profile string
	// Manager is the memory-manager key ("thp", "hugetlbfs", "hpmmap").
	Manager string
	// Variant is an optional extra coordinate for experiments with an
	// axis beyond the standard five (noise base/noisy, sweep knob value).
	Variant string
	// Cores is the core count (single node) or rank count (cluster).
	Cores int
	// Run is the repetition index within the cell's coordinates.
	Run int
}

// String renders the cell compactly for progress lines and errors.
func (c Cell) String() string {
	s := c.Exp
	if c.Bench != "" {
		s += " " + c.Bench
	}
	if c.Profile != "" {
		s += "/" + c.Profile
	}
	if c.Manager != "" {
		s += "/" + c.Manager
	}
	if c.Variant != "" {
		s += "/" + c.Variant
	}
	s += fmt.Sprintf("/c%d#%d", c.Cores, c.Run)
	return s
}

// Plan is a named experiment: a base seed and a grid of independent cells.
type Plan struct {
	Name  string
	Seed  uint64
	Cells []Cell
}

// Event is one progress notification. Events are delivered in completion
// order through the serialized sink; Done counts completed cells.
type Event struct {
	Plan string
	// Cell that just completed (or failed); Index is its position in
	// Plan.Cells.
	Cell  Cell
	Index int
	// Done of Total cells have completed.
	Done, Total int
	// Elapsed is the wall-clock time since the executor started; ETA
	// extrapolates the remaining time from the mean cell rate so far.
	Elapsed, ETA time.Duration
	// Result is the cell function's returned value (nil on error).
	Result any
	// Err is the cell's error, if any.
	Err error
	// Failed counts cells that have failed so far (quarantined holes
	// under ContinueOnError, fatal otherwise). Done includes them — a
	// failed cell is finished, just not successful — so Failed is what
	// distinguishes "10/10" from "10/10 with holes" in a progress line.
	Failed int
	// Retries counts host-transient cell re-runs so far across the
	// plan. A retried cell never double-counts toward Done; this is the
	// only place retry churn surfaces in progress.
	Retries int
}

// String renders a progress line with done/total and ETA; failed and
// retried cells are called out distinctly so a grid with quarantined
// holes never reads as clean.
func (e Event) String() string {
	s := fmt.Sprintf("%s %d/%d", e.Plan, e.Done, e.Total)
	if e.Failed > 0 {
		s += fmt.Sprintf(" [%d failed]", e.Failed)
	}
	if e.Retries > 0 {
		s += fmt.Sprintf(" [%d retried]", e.Retries)
	}
	s += fmt.Sprintf(" (ETA %s) %s", e.ETA.Round(time.Second), e.Cell)
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Options configures an execution.
type Options struct {
	// Workers bounds the worker pool; <= 0 selects runtime.NumCPU().
	Workers int
	// Context cancels the run; nil means context.Background(). The
	// context handed to cell functions is cancelled on the first cell
	// error as well.
	Context context.Context
	// Progress, when non-nil, receives one event per completed cell
	// through a serialized sink: invocations never overlap, so the
	// callback may touch unsynchronized state.
	Progress func(Event)

	// CellTimeout bounds one cell's wall-clock execution: the cell's
	// context is cancelled after the duration and the cell fails with a
	// timeout-annotated error. Zero means no per-cell bound. Simulation
	// cells observe cancellation every few tens of thousands of engine
	// events (see experiments.runToCompletion), so a runaway cell stops
	// promptly rather than at its natural end.
	CellTimeout time.Duration

	// Retries re-runs a failed cell up to this many additional times —
	// but only for errors marked host-transient via Transient (cache
	// I/O, filesystem hiccups). Simulation errors are deterministic:
	// re-running them reproduces the identical failure, so they are
	// never retried. Retried cells reuse the same coordinate-derived
	// seed, preserving the determinism contract. Attempts are separated
	// by a deterministic exponential host-side backoff
	// (RetryBackoffBase·2^attempt, capped at RetryBackoffCap) so a
	// congested filesystem gets room to recover; the wait is wall-clock
	// only and never touches simulated state, so results stay
	// byte-identical with or without it. Cancelling the context cuts the
	// wait short.
	Retries int

	// RetryBackoffBase is the delay before the first retry; each further
	// attempt doubles it. Zero selects 50ms. Negative disables the
	// backoff entirely (retries re-run immediately — the pre-backoff
	// behavior, used by tests that drill the retry loop itself).
	RetryBackoffBase time.Duration

	// RetryBackoffCap bounds the exponential backoff. Zero selects 2s.
	RetryBackoffCap time.Duration

	// ContinueOnError quarantines failed cells instead of cancelling
	// the plan: every remaining cell still runs, the zero value stands
	// in for each failed cell's result, and Run returns a *GridError
	// listing the failures in cell-index order. Parent-context
	// cancellation still aborts the run (and takes precedence over the
	// grid error in the return).
	ContinueOnError bool

	// Metrics, when non-nil, receives the runner's own plan-level
	// counters (runner_cells_failed_total, runner_cell_retries_total)
	// as pull sources — typically Observations.PlanRegistry().
	Metrics *metrics.Registry

	// Ledger, when non-nil, receives the run journal: a canonical
	// manifest + cell-lifecycle stream (byte-identical at any worker
	// count; see internal/ledger) plus a host annex of wall-times,
	// worker IDs, allocation deltas, retries and timeouts. Typically
	// Observations.LedgerSink().
	Ledger *ledger.Ledger
}

// CellFunc computes one cell. idx is the cell's position in Plan.Cells;
// seed is the cell's coordinate-derived PRNG seed. The function must not
// retain ctx past its return and must be safe to call concurrently with
// itself on different cells.
type CellFunc[T any] func(ctx context.Context, idx int, cell Cell, seed uint64) (T, error)

// Run executes every cell of the plan on a bounded worker pool and
// returns the results indexed by cell position. The first error cancels
// the remaining cells and is returned (cells already running finish or
// observe ctx cancellation). A nil error means every cell completed.
func Run[T any](opts Options, plan Plan, fn CellFunc[T]) ([]T, error) {
	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(plan.Cells) {
		workers = len(plan.Cells)
	}
	results := make([]T, len(plan.Cells))
	if len(plan.Cells) == 0 {
		return results, parent.Err()
	}

	ctx, cancel := context.WithCancel(parent)
	defer cancel()

	led := opts.Ledger // nil is the no-op sink, but host probes are gated on it
	led.BeginPlan(plan.Name, plan.Seed, len(plan.Cells), workers)

	var (
		mu       sync.Mutex // serializes progress + failure recording
		firstErr error
		failures []CellError
		done     int
		start    = time.Now()

		cellsFailed, cellRetries atomic.Uint64
	)
	if opts.Metrics != nil {
		opts.Metrics.CounterFunc(metrics.RunnerCellsFailedTotal, func() uint64 { return cellsFailed.Load() })
		opts.Metrics.CounterFunc(metrics.RunnerCellRetriesTotal, func() uint64 { return cellRetries.Load() })
	}
	fail := func(idx int, err error) {
		cellsFailed.Add(1)
		mu.Lock()
		if opts.ContinueOnError {
			failures = append(failures, CellError{Index: idx, Cell: plan.Cells[idx], Err: err})
			mu.Unlock()
			return
		}
		if firstErr == nil {
			firstErr = fmt.Errorf("%s: %w", plan.Cells[idx], err)
			cancel()
		}
		mu.Unlock()
	}
	emit := func(idx int, res any, err error) {
		mu.Lock()
		defer mu.Unlock()
		done++
		if opts.Progress == nil {
			return
		}
		elapsed := time.Since(start)
		var eta time.Duration
		if rem := len(plan.Cells) - done; rem > 0 && done > 0 {
			eta = time.Duration(float64(elapsed) / float64(done) * float64(rem))
		}
		opts.Progress(Event{
			Plan: plan.Name, Cell: plan.Cells[idx], Index: idx,
			Done: done, Total: len(plan.Cells),
			Elapsed: elapsed, ETA: eta,
			Result: res, Err: err,
			Failed:  int(cellsFailed.Load()),
			Retries: int(cellRetries.Load()),
		})
	}

	// runOnce executes one attempt of one cell, containing panics so
	// one bad cell cannot take down the process. A recovered error
	// payload (e.g. a structured *invariant.Violation raised by a
	// simulated-state audit) is preserved in the wrap chain, so callers
	// can errors.As through the cell error to the original cause.
	runOnce := func(idx int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				if cause, ok := r.(error); ok {
					err = fmt.Errorf("runner: panic in cell %s: %w\n%s",
						plan.Cells[idx], cause, debug.Stack())
				} else {
					err = fmt.Errorf("runner: panic in cell %s: %v\n%s",
						plan.Cells[idx], r, debug.Stack())
				}
			}
		}()
		cellCtx := ctx
		if opts.CellTimeout > 0 {
			var cancelCell context.CancelFunc
			cellCtx, cancelCell = context.WithTimeout(ctx, opts.CellTimeout)
			defer cancelCell()
		}
		out, err = fn(cellCtx, idx, plan.Cells[idx], plan.Cells[idx].Seed(plan.Seed))
		if err != nil && cellCtx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			err = fmt.Errorf("runner: cell exceeded timeout %s: %w", opts.CellTimeout, err)
			led.CellTimeout(idx)
		}
		return out, err
	}

	// runCell adds the bounded retry: only host-transient failures
	// (marked via Transient) re-run, and only while the plan is live.
	// Attempts back off exponentially (deterministic schedule: base·2^n,
	// capped) on the host clock — the transient class is I/O congestion,
	// and hammering a struggling filesystem converts one transient into
	// many. Simulated time is untouched; cancellation cuts the wait.
	backoffBase, backoffCap := opts.RetryBackoffBase, opts.RetryBackoffCap
	if backoffBase == 0 {
		backoffBase = 50 * time.Millisecond
	}
	if backoffCap <= 0 {
		backoffCap = 2 * time.Second
	}
	retryWait := func(attempt int) bool {
		if backoffBase < 0 {
			return true // backoff disabled: retry immediately
		}
		delay := backoffBase
		for i := 0; i < attempt && delay < backoffCap; i++ {
			delay *= 2
		}
		if delay > backoffCap {
			delay = backoffCap
		}
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
			return true
		case <-ctx.Done():
			return false
		}
	}
	runCell := func(idx int) (out T, err error) {
		for attempt := 0; ; attempt++ {
			out, err = runOnce(idx)
			if err == nil || attempt >= opts.Retries || !IsTransient(err) || ctx.Err() != nil {
				return out, err
			}
			cellRetries.Add(1)
			led.CellRetry(idx, attempt+1, ledger.FirstLine(err))
			if !retryWait(attempt) {
				return out, err
			}
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for idx := range jobs {
				if ctx.Err() != nil {
					continue // cancelled: drain without executing
				}
				// Host probes (wall clock, allocation delta) are gated
				// on an attached ledger so the bare path pays nothing.
				var cellStart time.Time
				var alloc0 uint64
				if led != nil {
					led.CellStart(idx, plan.Cells[idx].String(), plan.Cells[idx].Seed(plan.Seed))
					alloc0 = totalAlloc()
					cellStart = time.Now()
				}
				out, err := runCell(idx)
				if led != nil {
					led.CellHost(idx, worker, time.Since(cellStart), totalAlloc()-alloc0)
					status, errText := ledger.StatusOK, ""
					if err != nil {
						errText = ledger.FirstLine(err)
						if opts.ContinueOnError {
							status = ledger.StatusQuarantined
						} else {
							status = ledger.StatusFailed
						}
					}
					led.CellFinish(idx, status, errText)
				}
				if err != nil {
					fail(idx, err)
					emit(idx, nil, err)
					continue
				}
				results[idx] = out
				emit(idx, out, nil)
			}
		}(w)
	}
	for idx := range plan.Cells {
		jobs <- idx
	}
	close(jobs)
	wg.Wait()
	led.EndPlan()

	mu.Lock()
	err := firstErr
	fails := failures
	mu.Unlock()
	if err != nil {
		return results, err
	}
	if cerr := parent.Err(); cerr != nil {
		return results, cerr
	}
	if len(fails) > 0 {
		sort.Slice(fails, func(i, j int) bool { return fails[i].Index < fails[j].Index })
		return results, &GridError{Plan: plan.Name, Total: len(plan.Cells), Failures: fails}
	}
	return results, nil
}

// totalAlloc reads the process-wide cumulative allocation counter for
// the ledger's per-cell alloc delta. With overlapping workers the
// delta attributes concurrent allocation to whichever cell is being
// bracketed — a host-annex attribution, never canonical data.
func totalAlloc() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc
}
