package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
)

// holesArtifacts runs an 8-cell plan with cells 2 and 5 quarantined
// (ContinueOnError) and full instrumentation on the surviving cells,
// returning every merged artifact: snapshot JSON, Chrome trace, series
// CSV, and the ledger's canonical projection.
func holesArtifacts(t *testing.T, workers int) (snap, trace, series, canon []byte) {
	t.Helper()
	obs := NewObservations(0)
	obs.EnableSeries()
	var raw bytes.Buffer
	led := ledger.New(&raw, ledger.Meta{
		Model: "test-model", Scale: 1, Flags: map[string]string{"exp": "holes"},
	})
	obs.SetLedger(led)

	plan := degradePlan(8)
	boom := errors.New("cell exploded\nhost stack detail varies across runs")
	_, err := Run(Options{
		Workers: workers, ContinueOnError: true,
		Metrics: obs.PlanRegistry(), Ledger: obs.LedgerSink(),
	}, plan, func(_ context.Context, idx int, c Cell, seed uint64) (int, error) {
		if idx == 2 || idx == 5 {
			return 0, boom
		}
		reg, tr := obs.Cell(idx, c.String())
		reg.Counter(metrics.SimEventsTotal).Add(uint64(idx + 1))
		tr.Instant(0, "test", fmt.Sprintf("tick%d", idx), uint64(idx))
		s := obs.Series(idx)
		s.Observe(reg, tr)
		probeVal := float64(idx)
		s.AddProbe(0, metrics.SimEventsTotal, func() float64 { return probeVal })
		s.Sample(uint64(100 + idx))
		return idx, nil
	})
	ge, ok := AsGridError(err)
	if !ok || len(ge.Failures) != 2 || ge.Failures[0].Index != 2 || ge.Failures[1].Index != 5 {
		t.Fatalf("want grid error with cells 2 and 5 quarantined, got %v", err)
	}
	if err := led.Close(); err != nil {
		t.Fatal(err)
	}

	var snapBuf, traceBuf, seriesBuf bytes.Buffer
	if err := obs.Merged().WriteJSON(&snapBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteTrace(&traceBuf); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSeriesCSV(&seriesBuf); err != nil {
		t.Fatal(err)
	}
	recs, err := ledger.Read(&raw)
	if err != nil {
		t.Fatal(err)
	}
	canon, err = ledger.Marshal(ledger.Canonical(recs))
	if err != nil {
		t.Fatal(err)
	}
	return snapBuf.Bytes(), traceBuf.Bytes(), seriesBuf.Bytes(), canon
}

// TestObservationsHolesByteIdenticalAcrossWorkers is the quarantine
// half of the observability determinism contract: with cells 2 and 5
// failed under ContinueOnError, the merged snapshot, trace, series CSV
// and canonical ledger projection are byte-identical at Workers=1 and
// Workers=8.
func TestObservationsHolesByteIdenticalAcrossWorkers(t *testing.T) {
	snap1, trace1, series1, canon1 := holesArtifacts(t, 1)
	snap8, trace8, series8, canon8 := holesArtifacts(t, 8)
	for _, c := range []struct {
		name   string
		w1, w8 []byte
	}{
		{"snapshot", snap1, snap8},
		{"trace", trace1, trace8},
		{"series", series1, series8},
		{"canonical ledger", canon1, canon8},
	} {
		if !bytes.Equal(c.w1, c.w8) {
			t.Errorf("%s differs between Workers=1 and Workers=8:\nW1:\n%s\nW8:\n%s", c.name, c.w1, c.w8)
		}
	}

	// The canonical projection records the holes, with only the
	// deterministic first line of the error text.
	recs, err := ledger.Read(bytes.NewReader(canon1))
	if err != nil {
		t.Fatal(err)
	}
	quarantined := 0
	for _, r := range recs {
		if r.T == ledger.TypeCellFinish && r.Status == ledger.StatusQuarantined {
			quarantined++
			if r.I != 2 && r.I != 5 {
				t.Errorf("unexpected quarantined cell %d", r.I)
			}
			if r.Err != "cell exploded" {
				t.Errorf("cell %d err = %q, want first line only", r.I, r.Err)
			}
		}
	}
	if quarantined != 2 {
		t.Fatalf("quarantined finish records = %d, want 2", quarantined)
	}
	end := recs[len(recs)-1]
	if end.T != ledger.TypePlanEnd || end.OK != 6 || end.Quarantined != 2 || end.Failed != 0 {
		t.Fatalf("plan_end = %+v", end)
	}
}

// TestLedgerMetricsInMergedSnapshot pins the runner_ledger_* plan
// metrics: they count canonical records and plans only, so the values
// are the same at any worker count.
func TestLedgerMetricsInMergedSnapshot(t *testing.T) {
	for _, workers := range []int{1, 8} {
		obs := NewObservations(0)
		var raw bytes.Buffer
		led := ledger.New(&raw, ledger.Meta{})
		obs.SetLedger(led)
		plan := degradePlan(8)
		_, err := Run(Options{
			Workers: workers, Metrics: obs.PlanRegistry(), Ledger: obs.LedgerSink(),
		}, plan, func(_ context.Context, idx int, _ Cell, _ uint64) (int, error) {
			return idx, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		snap := obs.Merged()
		// manifest + 8 starts + 8 finishes + plan_end = 18.
		if got := snap.CounterValue(metrics.RunnerLedgerRecordsTotal); got != 18 {
			t.Fatalf("workers=%d: runner_ledger_records_total = %d, want 18", workers, got)
		}
		if got := snap.CounterValue(metrics.RunnerLedgerPlansTotal); got != 1 {
			t.Fatalf("workers=%d: runner_ledger_plans_total = %d, want 1", workers, got)
		}
	}
}

// TestLedgerNilSinkUnwired: a plan with no ledger attached journals
// nothing and pays no host probes (totalAlloc is gated on led != nil).
func TestLedgerNilSinkUnwired(t *testing.T) {
	obs := NewObservations(0)
	if obs.LedgerSink() != nil {
		t.Fatal("LedgerSink non-nil before SetLedger")
	}
	var o *Observations
	if o.LedgerSink() != nil {
		t.Fatal("nil Observations returned a ledger")
	}
	o.SetLedger(nil) // must not panic
	_, err := Run(Options{Workers: 2, Ledger: obs.LedgerSink()}, degradePlan(4),
		func(_ context.Context, idx int, _ Cell, _ uint64) (int, error) { return idx, nil })
	if err != nil {
		t.Fatal(err)
	}
}
