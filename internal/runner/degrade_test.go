package runner

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hpmmap/internal/invariant"
	"hpmmap/internal/metrics"
)

func degradePlan(n int) Plan {
	p := Plan{Name: "degrade", Seed: 1}
	for i := 0; i < n; i++ {
		p.Cells = append(p.Cells, Cell{Exp: "t", Bench: "b", Cores: 1, Run: i})
	}
	return p
}

func TestContinueOnErrorQuarantinesFailures(t *testing.T) {
	plan := degradePlan(8)
	boom := errors.New("cell exploded")
	res, err := Run(Options{Workers: 3, ContinueOnError: true}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			if idx == 2 || idx == 5 {
				return 0, boom
			}
			return idx + 100, nil
		})
	ge, ok := AsGridError(err)
	if !ok {
		t.Fatalf("want *GridError, got %v", err)
	}
	if got := ge.FailedIndexes(); len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("failed indexes = %v, want [2 5]", got)
	}
	if ge.Total != 8 {
		t.Fatalf("Total = %d, want 8", ge.Total)
	}
	if !errors.Is(err, boom) {
		t.Fatal("GridError does not unwrap to the cell cause")
	}
	for i, v := range res {
		switch i {
		case 2, 5:
			if v != 0 {
				t.Fatalf("failed cell %d has non-zero result %d", i, v)
			}
		default:
			if v != i+100 {
				t.Fatalf("cell %d result = %d, want %d", i, v, i+100)
			}
		}
	}
	if !strings.Contains(ge.Error(), "2 of 8 cells failed") {
		t.Fatalf("summary = %q", ge.Error())
	}
}

func TestContinueOnErrorAllCellsStillRun(t *testing.T) {
	plan := degradePlan(16)
	var ran atomic.Uint64
	_, err := Run(Options{Workers: 4, ContinueOnError: true}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			ran.Add(1)
			return 0, fmt.Errorf("always fails")
		})
	if ran.Load() != 16 {
		t.Fatalf("only %d of 16 cells ran under ContinueOnError", ran.Load())
	}
	ge, ok := AsGridError(err)
	if !ok || len(ge.Failures) != 16 {
		t.Fatalf("want 16 failures, got %v", err)
	}
	for i, f := range ge.Failures {
		if f.Index != i {
			t.Fatalf("failures not sorted by index: %v", ge.FailedIndexes())
		}
	}
}

func TestFirstErrorStillCancelsWithoutContinue(t *testing.T) {
	plan := degradePlan(64)
	var ran atomic.Uint64
	_, err := Run(Options{Workers: 1}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			ran.Add(1)
			return 0, errors.New("fail fast")
		})
	if err == nil {
		t.Fatal("want error")
	}
	if _, ok := AsGridError(err); ok {
		t.Fatal("fail-fast mode must not return a GridError")
	}
	if ran.Load() == 64 {
		t.Fatal("fail-fast mode ran every cell after the first error")
	}
}

func TestTransientRetries(t *testing.T) {
	plan := degradePlan(1)
	attempts := 0
	res, err := Run(Options{Retries: 3}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			attempts++
			if attempts < 3 {
				return 0, Transient(errors.New("flaky disk"))
			}
			return 7, nil
		})
	if err != nil || res[0] != 7 {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestDeterministicErrorsNotRetried(t *testing.T) {
	plan := degradePlan(1)
	attempts := 0
	_, err := Run(Options{Retries: 5}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			attempts++
			return 0, errors.New("simulation diverged")
		})
	if err == nil {
		t.Fatal("want error")
	}
	if attempts != 1 {
		t.Fatalf("deterministic error retried %d times", attempts-1)
	}
}

func TestRetriesExhaustedReportsTransient(t *testing.T) {
	plan := degradePlan(1)
	attempts := 0
	_, err := Run(Options{Retries: 2}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			attempts++
			return 0, Transient(errors.New("still flaky"))
		})
	if err == nil || !IsTransient(err) {
		t.Fatalf("want transient-marked error after exhausted retries, got %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
}

func TestCellTimeout(t *testing.T) {
	plan := degradePlan(1)
	_, err := Run(Options{CellTimeout: 20 * time.Millisecond}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			<-ctx.Done() // a well-behaved cell observes cancellation
			return 0, ctx.Err()
		})
	if err == nil || !strings.Contains(err.Error(), "exceeded timeout") {
		t.Fatalf("want timeout-annotated error, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout cause not preserved: %v", err)
	}
}

func TestPanicPreservesErrorPayload(t *testing.T) {
	plan := degradePlan(2)
	_, err := Run(Options{Workers: 1, ContinueOnError: true}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			if idx == 1 {
				invariant.Failf("test_check", "testsub", "deliberate violation in cell %d", idx)
			}
			return idx, nil
		})
	ge, ok := AsGridError(err)
	if !ok || len(ge.Failures) != 1 {
		t.Fatalf("want one quarantined failure, got %v", err)
	}
	v, ok := invariant.As(ge.Failures[0].Err)
	if !ok {
		t.Fatalf("violation payload lost through panic containment: %v", ge.Failures[0].Err)
	}
	if v.Check != "test_check" || v.Subsystem != "testsub" {
		t.Fatalf("wrong violation recovered: %+v", v)
	}
	// And through the aggregate error itself.
	if v2, ok := invariant.As(err); !ok || v2.Check != "test_check" {
		t.Fatal("errors.As through *GridError did not reach the violation")
	}
}

func TestRunnerMetrics(t *testing.T) {
	obs := NewObservations(0)
	plan := degradePlan(4)
	attempts := make([]int, 4)
	_, err := Run(Options{Workers: 1, ContinueOnError: true, Retries: 1, Metrics: obs.PlanRegistry()}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			attempts[idx]++
			switch idx {
			case 1:
				return 0, errors.New("hard failure")
			case 2:
				if attempts[2] == 1 {
					return 0, Transient(errors.New("transient once"))
				}
			}
			return idx, nil
		})
	if _, ok := AsGridError(err); !ok {
		t.Fatalf("want grid error, got %v", err)
	}
	snap := obs.Merged()
	if got := snap.CounterValue(metrics.RunnerCellsFailedTotal); got != 1 {
		t.Fatalf("runner_cells_failed_total = %d, want 1", got)
	}
	if got := snap.CounterValue(metrics.RunnerCellRetriesTotal); got != 1 {
		t.Fatalf("runner_cell_retries_total = %d, want 1", got)
	}
}

func TestCacheCorruptEntryDetected(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	key := c.Key("p", Cell{Exp: "t"}, 42, 1)
	if err := c.Put(key, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry: truncate mid-JSON.
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte(`{"x":`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out map[string]int
	if c.Get(key, &out) {
		t.Fatal("corrupt entry reported as a hit")
	}
	if got := c.CorruptCount(); got != 1 {
		t.Fatalf("CorruptCount = %d, want 1", got)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt entry was not deleted")
	}
	// The slot is reusable after deletion.
	if err := c.Put(key, map[string]int{"x": 2}); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, &out) || out["x"] != 2 {
		t.Fatal("re-cached entry does not hit")
	}
	// Wire into the plan registry.
	obs := NewObservations(0)
	obs.ObserveCache(c)
	if got := obs.Merged().CounterValue(metrics.RunnerCacheCorruptTotal); got != 1 {
		t.Fatalf("runner_cache_corrupt_total = %d, want 1", got)
	}
}

// TestGridErrorMultiCauseUnwrap pins the aggregate-unwrap contract:
// Unwrap() exposes every cell failure in ascending Index order no
// matter which worker finished first, and errors.Is / errors.As reach
// a cause buried in ANY cell — a sentinel in one, a structured
// invariant violation in another, a transient mark in a third.
func TestGridErrorMultiCauseUnwrap(t *testing.T) {
	plan := degradePlan(6)
	sentinel := errors.New("disk on fire")
	var release sync.WaitGroup
	release.Add(1)
	_, err := Run(Options{Workers: 6, ContinueOnError: true}, plan,
		func(ctx context.Context, idx int, c Cell, seed uint64) (int, error) {
			switch idx {
			case 1:
				// Completes LAST: holds until every other cell returned.
				release.Wait()
				return 0, fmt.Errorf("slow cell: %w", sentinel)
			case 3:
				return 0, func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							err = r.(error)
						}
					}()
					invariant.Failf("unwrap_check", "degrade", "cell %d poisoned", idx)
					return nil
				}()
			case 5:
				defer release.Done()
				return 0, Transient(errors.New("flaky mount"))
			}
			return idx, nil
		})
	ge, ok := AsGridError(err)
	if !ok {
		t.Fatalf("want *GridError, got %v", err)
	}
	// Ascending Index order, independent of completion order (cell 1
	// finished after cells 3 and 5 by construction).
	if got := ge.FailedIndexes(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("FailedIndexes = %v, want [1 3 5]", got)
	}
	unwrapped := ge.Unwrap()
	if len(unwrapped) != 3 {
		t.Fatalf("Unwrap returned %d errors, want 3", len(unwrapped))
	}
	for i, e := range unwrapped {
		var ce CellError
		if !errors.As(e, &ce) || ce.Index != ge.Failures[i].Index {
			t.Fatalf("Unwrap()[%d] = %v, want CellError for index %d", i, e, ge.Failures[i].Index)
		}
	}
	// Multi-cause traversal through the aggregate.
	if !errors.Is(err, sentinel) {
		t.Fatal("errors.Is missed the sentinel wrapped in cell 1")
	}
	if v, ok := invariant.As(err); !ok || v.Check != "unwrap_check" {
		t.Fatal("errors.As missed the invariant violation in cell 3")
	}
	if !IsTransient(err) {
		t.Fatal("IsTransient missed the transient mark in cell 5")
	}
}

// TestCacheCorruptEntryReExecuted drives the corrupt-entry recovery end
// to end through a plan, the way the studies use the cache: the corrupt
// entry is detected and deleted, runner_cache_corrupt_total increments,
// the cell re-executes and re-caches, and the next run hits clean.
func TestCacheCorruptEntryReExecuted(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(dir, "v1")
	if err != nil {
		t.Fatal(err)
	}
	plan := degradePlan(1)
	var executions atomic.Int64
	runPlan := func() int {
		res, err := Run(Options{Workers: 1}, plan,
			func(ctx context.Context, idx int, cell Cell, seed uint64) (int, error) {
				key := c.Key(plan.Name, cell, seed, 1)
				var v int
				if c.Get(key, &v) {
					return v, nil
				}
				executions.Add(1)
				v = 7
				if err := c.Put(key, v); err != nil {
					return 0, Transient(err)
				}
				return v, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
	if got := runPlan(); got != 7 {
		t.Fatalf("first run = %d, want 7", got)
	}
	if got := runPlan(); got != 7 || executions.Load() != 1 {
		t.Fatalf("warm run re-executed (executions=%d)", executions.Load())
	}
	// Corrupt the entry on disk: the next run must detect it, delete it,
	// count it, and re-execute the cell.
	key := c.Key(plan.Name, plan.Cells[0], plan.Cells[0].Seed(plan.Seed), 1)
	path := filepath.Join(dir, key+".json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runPlan(); got != 7 {
		t.Fatalf("recovery run = %d, want 7", got)
	}
	if executions.Load() != 2 {
		t.Fatalf("corrupt entry did not force re-execution (executions=%d)", executions.Load())
	}
	if got := c.CorruptCount(); got != 1 {
		t.Fatalf("CorruptCount = %d, want 1", got)
	}
	obs := NewObservations(0)
	obs.ObserveCache(c)
	if got := obs.Merged().CounterValue(metrics.RunnerCacheCorruptTotal); got != 1 {
		t.Fatalf("runner_cache_corrupt_total = %d, want 1", got)
	}
	// The re-executed result was re-cached: a final run hits clean.
	if got := runPlan(); got != 7 || executions.Load() != 2 {
		t.Fatalf("re-cached entry does not hit (executions=%d)", executions.Load())
	}
}

func TestNilCacheCorruptCount(t *testing.T) {
	var c *Cache
	if c.CorruptCount() != 0 {
		t.Fatal("nil cache reports corruption")
	}
	var o *Observations
	o.ObserveCache(nil) // must not panic
	if o.PlanRegistry() != nil {
		t.Fatal("nil observations returned a live registry")
	}
}
