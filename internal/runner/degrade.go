package runner

import (
	"errors"
	"fmt"
)

// This file is the runner's graceful-degradation surface: transient-error
// marking (bounded retry), per-cell failure records, and the aggregate
// GridError returned by ContinueOnError runs. The design target is the
// robustness acceptance bar of the chaos study: one poisoned cell in a
// 96-cell grid must never take down the process or discard the other 95
// results — it becomes an annotated hole in the figure plus a structured
// error report.

// transientErr marks an error as host-transient: caused by the machine
// running the experiment (cache I/O, file-system hiccups), not by the
// simulation. Only transient errors are retried — retrying a
// deterministic simulation error would re-execute the identical failure.
type transientErr struct{ err error }

func (t *transientErr) Error() string { return t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// Transient marks err as host-transient, making it eligible for the
// bounded retry of Options.Retries. Returns nil for a nil err.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked by
// Transient.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}

// CellError records one failed cell of a ContinueOnError run.
type CellError struct {
	// Index is the cell's position in Plan.Cells.
	Index int
	// Cell identifies the failed coordinates.
	Cell Cell
	// Err is the cell's final error (after any retries), with the
	// original cause chain preserved — errors.As can recover structured
	// payloads such as *invariant.Violation through it.
	Err error
}

// Error renders the cell coordinates with the underlying error.
func (e CellError) Error() string { return fmt.Sprintf("%s: %v", e.Cell, e.Err) }

// Unwrap exposes the underlying error to errors.Is / errors.As.
func (e CellError) Unwrap() error { return e.Err }

// GridError aggregates every cell failure of a ContinueOnError run. The
// successful cells' results are still returned alongside it; reducers
// treat the failed indexes as holes.
type GridError struct {
	// Plan is the plan name.
	Plan string
	// Total is the grid size.
	Total int
	// Failures lists the failed cells in ascending Index order.
	Failures []CellError
}

// Error summarizes the failure set.
func (e *GridError) Error() string {
	if len(e.Failures) == 0 {
		return fmt.Sprintf("runner: plan %s: empty grid error", e.Plan)
	}
	return fmt.Sprintf("runner: plan %s: %d of %d cells failed; first: %v",
		e.Plan, len(e.Failures), e.Total, e.Failures[0])
}

// Unwrap exposes every cell failure, so errors.Is / errors.As traverse
// all of them (finding, e.g., an *invariant.Violation in any cell).
func (e *GridError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f
	}
	return errs
}

// FailedIndexes returns the failed cell positions in ascending order —
// the reducer-side hole mask.
func (e *GridError) FailedIndexes() []int {
	idxs := make([]int, len(e.Failures))
	for i, f := range e.Failures {
		idxs[i] = f.Index
	}
	return idxs
}

// AsGridError unwraps err to a *GridError if one is present.
func AsGridError(err error) (*GridError, bool) {
	var g *GridError
	if errors.As(err, &g) {
		return g, true
	}
	return nil, false
}
