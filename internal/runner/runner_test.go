package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func grid(exp string, benches, profiles, managers []string, cores []int, runs int) Plan {
	p := Plan{Name: exp, Seed: 0x7e57}
	for _, b := range benches {
		for _, pr := range profiles {
			for _, m := range managers {
				for _, c := range cores {
					for r := 0; r < runs; r++ {
						p.Cells = append(p.Cells, Cell{
							Exp: exp, Bench: b, Profile: pr, Manager: m, Cores: c, Run: r,
						})
					}
				}
			}
		}
	}
	return p
}

func fig7Grid() Plan {
	return grid("fig7",
		[]string{"HPCCG", "CoMD", "miniMD", "miniFE"},
		[]string{"A", "B"},
		[]string{"hpmmap", "thp", "hugetlbfs"},
		[]int{1, 2, 4, 8}, 10)
}

// TestResultsIdenticalAcrossWorkerCounts is the executor half of the
// determinism contract: results depend only on the coordinate-derived
// seed, never on scheduling.
func TestResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	plan := fig7Grid()
	run := func(workers int) []uint64 {
		out, err := Run(Options{Workers: workers}, plan,
			func(_ context.Context, _ int, _ Cell, seed uint64) (uint64, error) {
				// A pure function of the seed stands in for a simulation run.
				_, v := splitmix64(seed)
				return v, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	w1 := run(1)
	for _, workers := range []int{2, 8, 33} {
		wn := run(workers)
		for i := range w1 {
			if w1[i] != wn[i] {
				t.Fatalf("workers=%d: cell %d differs: %x vs %x", workers, i, wn[i], w1[i])
			}
		}
	}
}

func TestWorkerPoolBounded(t *testing.T) {
	plan := grid("bound", []string{"b"}, []string{"p"}, []string{"m"}, []int{1}, 64)
	const workers = 3
	var cur, max atomic.Int64
	_, err := Run(Options{Workers: workers}, plan,
		func(context.Context, int, Cell, uint64) (int, error) {
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent cells, worker bound is %d", got, workers)
	}
}

func TestFirstErrorPropagatesAndCancels(t *testing.T) {
	plan := grid("err", []string{"b"}, []string{"p"}, []string{"m"}, []int{1}, 100)
	boom := errors.New("boom")
	var executed atomic.Int64
	_, err := Run(Options{Workers: 2}, plan,
		func(ctx context.Context, idx int, _ Cell, _ uint64) (int, error) {
			executed.Add(1)
			if idx == 3 {
				return 0, boom
			}
			return idx, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "err b/p/m/c1#3") {
		t.Fatalf("error does not name the failing cell: %v", err)
	}
	// Cancellation must stop the tail of the plan from executing.
	if n := executed.Load(); n == int64(len(plan.Cells)) {
		t.Fatalf("all %d cells executed despite early error", n)
	}
}

func TestPanicContained(t *testing.T) {
	plan := grid("panic", []string{"b"}, []string{"p"}, []string{"m"}, []int{1}, 4)
	_, err := Run(Options{Workers: 2}, plan,
		func(_ context.Context, idx int, _ Cell, _ uint64) (int, error) {
			if idx == 1 {
				panic("cell exploded")
			}
			return idx, nil
		})
	if err == nil || !strings.Contains(err.Error(), "cell exploded") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	plan := grid("cancel", []string{"b"}, []string{"p"}, []string{"m"}, []int{1}, 200)
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	_, err := Run(Options{Workers: 2, Context: ctx}, plan,
		func(context.Context, int, Cell, uint64) (int, error) {
			if executed.Add(1) == 5 {
				cancel()
			}
			return 0, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n == int64(len(plan.Cells)) {
		t.Fatalf("cancellation did not stop the plan (%d cells ran)", n)
	}
}

func TestProgressSerializedAndComplete(t *testing.T) {
	plan := grid("prog", []string{"b"}, []string{"p"}, []string{"m"}, []int{1, 2}, 25)
	var inSink atomic.Int64
	seen := map[int]bool{} // unsynchronized on purpose: the sink contract
	lastDone := 0
	_, err := Run(Options{
		Workers: 8,
		Progress: func(e Event) {
			if inSink.Add(1) != 1 {
				t.Error("progress sink invoked concurrently")
			}
			defer inSink.Add(-1)
			seen[e.Index] = true
			if e.Done != lastDone+1 {
				t.Errorf("done went %d -> %d", lastDone, e.Done)
			}
			lastDone = e.Done
			if e.Total != len(plan.Cells) {
				t.Errorf("total = %d, want %d", e.Total, len(plan.Cells))
			}
			if e.Done < e.Total && e.Elapsed > 0 && e.ETA < 0 {
				t.Errorf("negative ETA: %v", e.ETA)
			}
		},
	}, plan, func(_ context.Context, idx int, _ Cell, _ uint64) (int, error) {
		time.Sleep(time.Duration(idx%3) * 100 * time.Microsecond)
		return idx, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(plan.Cells) {
		t.Fatalf("progress covered %d of %d cells", len(seen), len(plan.Cells))
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Plan: "fig7",
		Cell: Cell{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4, Run: 2},
		Done: 3, Total: 10, ETA: 90 * time.Second,
	}
	s := e.String()
	for _, want := range []string{"fig7", "3/10", "ETA", "HPCCG", "thp", "c4#2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("event %q missing %q", s, want)
		}
	}
	// A clean event carries no degradation markers.
	for _, not := range []string{"failed", "retried"} {
		if strings.Contains(s, not) {
			t.Fatalf("clean event %q mentions %q", s, not)
		}
	}
	// Quarantined and retried cells are called out distinctly from the
	// done/total count.
	e.Failed, e.Retries = 2, 5
	s = e.String()
	for _, want := range []string{"3/10", "[2 failed]", "[5 retried]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("degraded event %q missing %q", s, want)
		}
	}
}

func TestEmptyPlan(t *testing.T) {
	out, err := Run(Options{}, Plan{Name: "empty"},
		func(context.Context, int, Cell, uint64) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty plan: %v %v", out, err)
	}
}

// TestRunStress hammers the pool under the race detector: many cells,
// shared progress sink, frequent errors suppressed until the end.
func TestRunStress(t *testing.T) {
	plan := grid("stress", []string{"a", "b"}, []string{"p", "q"}, []string{"m"}, []int{1, 2, 4}, 20)
	var mu sync.Mutex
	var lines []string
	out, err := Run(Options{
		Workers: 16,
		Progress: func(e Event) {
			mu.Lock()
			lines = append(lines, e.String())
			mu.Unlock()
		},
	}, plan, func(_ context.Context, idx int, cell Cell, seed uint64) (string, error) {
		return fmt.Sprintf("%s=%x", cell, seed), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(plan.Cells) || len(lines) != len(plan.Cells) {
		t.Fatalf("%d results, %d progress lines, want %d", len(out), len(lines), len(plan.Cells))
	}
	for i, s := range out {
		if s == "" {
			t.Fatalf("cell %d produced no result", i)
		}
	}
}
