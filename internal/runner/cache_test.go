package runner

import (
	"os"
	"path/filepath"
	"testing"
)

type cachedCell struct {
	RuntimeSec float64
	Faults     uint64
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := NewCache(t.TempDir(), "v1")
	if err != nil {
		t.Fatal(err)
	}
	cell := Cell{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4, Run: 2}
	key := c.Key("fig7", cell, 0xdead, 0.25)
	var out cachedCell
	if c.Get(key, &out) {
		t.Fatal("hit before put")
	}
	want := cachedCell{RuntimeSec: 151.25, Faults: 1337}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, &out) || out != want {
		t.Fatalf("got %+v, want %+v", out, want)
	}
}

func TestCacheKeyIdentity(t *testing.T) {
	c, _ := NewCache(t.TempDir(), "v1")
	cell := Cell{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4, Run: 2}
	base := c.Key("fig7", cell, 1, 1)
	// Any identity component changing must change the key.
	if c.Key("fig7", cell, 2, 1) == base {
		t.Fatal("seed not in key")
	}
	if c.Key("fig7", cell, 1, 0.5) == base {
		t.Fatal("scale not in key")
	}
	other := cell
	other.Run = 3
	if c.Key("fig7", other, 1, 1) == base {
		t.Fatal("run index not in key")
	}
	c2, _ := NewCache(t.TempDir(), "v2")
	if c2.Key("fig7", cell, 1, 1) == base {
		t.Fatal("version not in key")
	}
}

func TestCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(dir, "v1")
	key := c.Key("x", Cell{Exp: "x"}, 1, 1)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out cachedCell
	if c.Get(key, &out) {
		t.Fatal("corrupt entry reported as hit")
	}
}

func TestNilCacheIsNoop(t *testing.T) {
	var c *Cache
	var out cachedCell
	if c.Get(c.Key("x", Cell{}, 1, 1), &out) {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", out); err != nil {
		t.Fatal(err)
	}
}

func TestCacheRejectsEmptyDir(t *testing.T) {
	if _, err := NewCache("", "v"); err == nil {
		t.Fatal("empty dir accepted")
	}
}
