package runner

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hpmmap/internal/ledger"
	"hpmmap/internal/metrics"
	"hpmmap/internal/timeline"
)

// Observations collects per-cell metric registries and Chrome tracers
// for one plan execution, and folds them into plan-wide artifacts after
// the run. It exists because cells execute concurrently: each cell gets
// a private registry and tracer (cells are single-threaded internally,
// so the per-cell hot paths stay lock-free), and the collector merges
// them in cell-index order afterwards — so the merged snapshot and trace
// are byte-identical at any worker count, mirroring the runner's seeding
// contract.
//
// A nil *Observations is a valid no-op collector: Cell returns (nil,
// nil) handles, which every instrumentation hook treats as "off".
type Observations struct {
	mu      sync.Mutex
	clockHz float64
	cells   map[int]*cellObs

	// seriesOn marks that per-cell time-series samplers were requested
	// (EnableSeries); Series then returns a live sampler per cell.
	seriesOn bool

	// plan holds plan-level (not per-cell) metric sources: the runner's
	// own failure/retry counters and the result cache's corruption
	// tally. Folded into Merged exactly once, after the cells.
	plan *metrics.Registry

	// led is the attached run journal (SetLedger); LedgerSink hands it
	// to the runner via Options.Ledger.
	led *ledger.Ledger
}

// cellObs is one cell's collected instrumentation.
type cellObs struct {
	reg     *metrics.Registry
	tracer  *metrics.ChromeTracer
	snap    metrics.Snapshot
	hasSnap bool
	label   string
	series  *timeline.Series
}

// NewObservations creates a collector. clockHz converts simulated cycles
// to trace microseconds (pass the machine's clock; <= 0 keeps the
// tracer's 1 GHz default).
func NewObservations(clockHz float64) *Observations {
	return &Observations{clockHz: clockHz, cells: make(map[int]*cellObs)}
}

// Cell returns the registry and tracer for the cell at the given plan
// index, creating them on first use. label names the trace process
// (typically Cell.String()). Safe for concurrent use by worker
// goroutines; safe on a nil receiver (returns nil handles, the
// uninstrumented path).
func (o *Observations) Cell(idx int, label string) (*metrics.Registry, *metrics.ChromeTracer) {
	if o == nil {
		return nil, nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.cells[idx]
	if c == nil {
		c = &cellObs{reg: metrics.NewRegistry(), tracer: metrics.NewChromeTracer(idx), label: label}
		if o.clockHz > 0 {
			c.tracer.SetClock(o.clockHz)
		}
		c.tracer.SetProcessName(label)
		if o.seriesOn {
			c.series = timeline.NewSeries()
		}
		o.cells[idx] = c
	}
	return c.reg, c.tracer
}

// EnableSeries requests a per-cell time-series sampler: every cell
// created by Cell afterwards carries a timeline.Series, retrievable via
// Series and rendered by WriteSeriesCSV. Call before the plan runs. Safe
// on a nil receiver.
func (o *Observations) EnableSeries() {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.seriesOn = true
	o.mu.Unlock()
}

// SeriesEnabled reports whether EnableSeries was called (false on a nil
// receiver). Figure pipelines use this to bypass the result cache:
// cached cells replay no samples, and freshly sampled cells must not
// overwrite baseline cache entries (their snapshots carry the sampler's
// own counter).
func (o *Observations) SeriesEnabled() bool {
	if o == nil {
		return false
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.seriesOn
}

// Series returns the cell's sampler, or nil when series collection is
// off, the cell was never created via Cell, or the receiver is nil — a
// nil *timeline.Series is the no-op sampler, so callers pass the result
// straight into the experiment options.
func (o *Observations) Series(idx int) *timeline.Series {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.cells[idx]
	if c == nil {
		return nil
	}
	return c.series
}

// WriteSeriesCSV writes every cell's samples as one long-format CSV
// (header row, then cells in ascending index order; each cell's rows are
// labelled with its trace label). Deterministic at any worker count.
// Safe on a nil receiver (writes only the header).
func (o *Observations) WriteSeriesCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, timeline.SeriesCSVHeader); err != nil {
		return err
	}
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, i := range o.indexes() {
		c := o.cells[i]
		if c.series == nil {
			continue
		}
		if err := c.series.WriteCSV(w, c.label); err != nil {
			return err
		}
	}
	return nil
}

// Snap captures and stores the cell's registry snapshot, returning it so
// the caller can embed it in a cacheable result. Safe on a nil receiver
// (returns an empty snapshot).
func (o *Observations) Snap(idx int) metrics.Snapshot {
	if o == nil {
		return metrics.Snapshot{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.cells[idx]
	if c == nil {
		return metrics.Snapshot{}
	}
	c.snap = c.reg.Snapshot()
	c.hasSnap = true
	return c.snap
}

// Record stores a pre-computed snapshot for a cell that did not run
// (a result-cache hit replaying the metrics it cached). Safe on a nil
// receiver.
func (o *Observations) Record(idx int, snap metrics.Snapshot) {
	if o == nil {
		return
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.cells[idx]
	if c == nil {
		c = &cellObs{}
		o.cells[idx] = c
	}
	c.snap = snap
	c.hasSnap = true
}

// PlanRegistry returns the plan-level registry, creating it on first
// use. It holds metrics that belong to the orchestration itself rather
// than any one cell (runner_cells_failed_total, runner_cell_retries_
// total, runner_cache_corrupt_total); pass it as Options.Metrics. Its
// snapshot is merged once, after every cell's, so plan-level totals are
// deterministic at any worker count. Safe on a nil receiver (returns
// nil, the no-op registry).
func (o *Observations) PlanRegistry() *metrics.Registry {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.plan == nil {
		o.plan = metrics.NewRegistry()
	}
	return o.plan
}

// SetLedger attaches the run journal. The runner writes lifecycle
// records to it (pass LedgerSink as Options.Ledger), the cache hooks
// write hit/miss traffic, and the plan registry gains the ledger's own
// counters (runner_ledger_records_total counts canonical records only
// — host record counts vary with cache state and so would break the
// merged snapshot's byte-identity contract; runner_ledger_plans_total
// counts plans journaled). Call before the plan runs. Safe on a nil
// receiver or nil ledger.
func (o *Observations) SetLedger(l *ledger.Ledger) {
	if o == nil || l == nil {
		return
	}
	o.mu.Lock()
	o.led = l
	o.mu.Unlock()
	reg := o.PlanRegistry()
	reg.CounterFunc(metrics.RunnerLedgerRecordsTotal, func() uint64 { return l.CanonicalRecords() })
	reg.CounterFunc(metrics.RunnerLedgerPlansTotal, func() uint64 { return l.PlanCount() })
}

// LedgerSink returns the attached ledger (nil when none is attached or
// on a nil receiver — a nil *ledger.Ledger is the no-op sink, so the
// result passes straight into Options.Ledger).
func (o *Observations) LedgerSink() *ledger.Ledger {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.led
}

// ObserveCache wires the result cache's corruption tally into the plan
// registry as a pull source. Safe on a nil receiver or nil cache.
func (o *Observations) ObserveCache(c *Cache) {
	if o == nil || c == nil {
		return
	}
	o.PlanRegistry().CounterFunc(metrics.RunnerCacheCorruptTotal, func() uint64 { return c.CorruptCount() })
}

// indexes returns the collected cell indexes in ascending order. Callers
// must hold o.mu.
func (o *Observations) indexes() []int {
	idxs := make([]int, 0, len(o.cells))
	for i := range o.cells {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	return idxs
}

// Merged folds every cell's snapshot into one plan-wide snapshot,
// merging in ascending cell-index order so the result is independent of
// worker count and completion order. Cells not yet snapped are snapped
// now. Safe on a nil receiver (returns an empty snapshot).
func (o *Observations) Merged() metrics.Snapshot {
	if o == nil {
		return metrics.Snapshot{}
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	snaps := make([]metrics.Snapshot, 0, len(o.cells))
	for _, i := range o.indexes() {
		c := o.cells[i]
		if !c.hasSnap {
			c.snap = c.reg.Snapshot()
			c.hasSnap = true
		}
		snaps = append(snaps, c.snap)
	}
	if o.plan != nil {
		snaps = append(snaps, o.plan.Snapshot())
	}
	return metrics.Merge(snaps...)
}

// WriteTrace writes every cell's trace events as one Chrome trace-event
// JSON document (cells become trace processes, in ascending cell-index
// order — deterministic at any worker count). Cells that never created
// a tracer (cache hits) are skipped. Safe on a nil receiver (writes an
// empty trace).
func (o *Observations) WriteTrace(w io.Writer) error {
	var tracers []*metrics.ChromeTracer
	if o != nil {
		o.mu.Lock()
		for _, i := range o.indexes() {
			if c := o.cells[i]; c.tracer != nil {
				tracers = append(tracers, c.tracer)
			}
		}
		o.mu.Unlock()
	}
	return metrics.WriteChromeTrace(w, tracers...)
}
