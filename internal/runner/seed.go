package runner

// Deterministic per-cell seed derivation.
//
// Every cell's seed is a pure function of (base seed, cell coordinates):
// the base seed opens a SplitMix64 substream and each coordinate —
// including a length/field tag so "ab"+"c" never aliases "a"+"bc" — is
// absorbed through the SplitMix64 finalizer. Nothing depends on execution
// order, so a plan produces identical per-cell streams at any worker
// count, and adding a cell to a grid never shifts the seeds of the
// others.
//
// This replaces the additive schemes the figure harnesses used to use
// (base + runIndex*17, base + prof*17, base + i*104729, ...), which can
// collide across grid dimensions: base+2*17 for run 2 of one axis equals
// base+1*34 of another, and two experiments sharing a base seed reuse
// entire streams. The finalizer chain gives 64-bit avalanche per
// coordinate, so distinct coordinates yield distinct, well-mixed seeds
// (see TestSeedNoCollisions for the regression grid).

// splitmix64 is the SplitMix64 finalizer: advances state by the golden
// gamma and returns (newState, output). Matches internal/sim's seeding
// primitive so cell seeds feed sim.NewRand with full-state mixing.
func splitmix64(state uint64) (uint64, uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// absorb folds one 64-bit coordinate into the running state.
func absorb(state, v uint64) uint64 {
	state, out := splitmix64(state ^ v)
	_, out2 := splitmix64(state ^ out)
	return out2
}

// hashString folds a string coordinate (FNV-1a 64, then finalized).
func hashString(s string) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	// Tag with the length so empty fields still advance the chain
	// distinctly from absent ones.
	h ^= uint64(len(s)) << 56
	_, out := splitmix64(h)
	return out
}

// Seed derives the cell's PRNG seed from the plan's base seed and the
// cell's coordinates. Independent of execution order and worker count.
func (c Cell) Seed(base uint64) uint64 {
	// Distinct field tags keep (Bench="x",Profile="") from aliasing
	// (Bench="",Profile="x").
	s := absorb(base, 0x48504d4d41500a01) // "HPMMAP\n" | chain version 1
	s = absorb(s, 0xe1^hashString(c.Exp))
	s = absorb(s, 0xe2^hashString(c.Bench))
	s = absorb(s, 0xe3^hashString(c.Profile))
	s = absorb(s, 0xe4^hashString(c.Manager))
	s = absorb(s, 0xe5^hashString(c.Variant))
	s = absorb(s, 0xe6^uint64(c.Cores))
	s = absorb(s, 0xe7^uint64(c.Run))
	return s
}
