package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Cache is a JSON result cache keyed by experiment cell coordinates. It
// lets report generation (cmd/hpmmap-report -cache-dir) regenerate tables
// without re-simulating unchanged cells: a cell's key covers the
// experiment, every cell coordinate, the derived seed, the scale, and a
// version string that consumers bump whenever the simulator's cost model
// changes, so stale entries can never be confused with fresh ones.
//
// Entries are one JSON file per key, written atomically (temp file +
// rename), so concurrent workers may Put distinct cells safely. A nil
// *Cache is a valid no-op cache: Get always misses and Put discards.
type Cache struct {
	dir     string
	version string

	// corrupt counts cell files that existed but failed to decode — a
	// truncated write, disk corruption, or manual tampering. Corrupt
	// files are deleted on detection (so the re-simulated result can be
	// re-cached cleanly), counted for runner_cache_corrupt_total, and
	// logged once per process run.
	corrupt atomic.Uint64
	logOnce sync.Once
}

// NewCache opens (creating if needed) a cache rooted at dir. version is
// folded into every key.
func NewCache(dir, version string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("runner: empty cache dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{dir: dir, version: version}, nil
}

// Key builds the cache key for one cell of a plan. scale is the
// experiment's problem-scale factor (part of the result's identity).
func (c *Cache) Key(plan string, cell Cell, seed uint64, scale float64) string {
	v := ""
	if c != nil {
		v = c.version
	}
	raw := fmt.Sprintf("v=%s|plan=%s|exp=%s|bench=%s|prof=%s|mgr=%s|var=%s|cores=%d|run=%d|seed=%016x|scale=%g",
		v, plan, cell.Exp, cell.Bench, cell.Profile, cell.Manager, cell.Variant,
		cell.Cores, cell.Run, seed, scale)
	sum := sha256.Sum256([]byte(raw))
	return hex.EncodeToString(sum[:16])
}

// Get loads the cached value for key into out, reporting whether it hit.
// A missing file is a plain miss. A file that exists but fails to decode
// (truncated or corrupt JSON) is also a miss — but it is counted (see
// CorruptCount), logged once, and deleted so the re-simulated cell can
// re-cache a clean entry instead of tripping over the bad file forever.
func (c *Cache) Get(key string, out any) bool {
	if c == nil {
		return false
	}
	path := c.path(key)
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	if uerr := json.Unmarshal(data, out); uerr != nil {
		c.corrupt.Add(1)
		c.logOnce.Do(func() {
			fmt.Fprintf(os.Stderr,
				"runner: corrupt cache entry %s (%v); deleting and re-simulating (further corrupt entries counted silently)\n",
				path, uerr)
		})
		os.Remove(path)
		return false
	}
	return true
}

// CorruptCount returns how many corrupt cache entries this cache has
// detected (and deleted) so far. Safe on a nil cache and safe for
// concurrent use.
func (c *Cache) CorruptCount() uint64 {
	if c == nil {
		return 0
	}
	return c.corrupt.Load()
}

// Put stores v under key. Errors are returned but callers may ignore
// them: a failed Put only costs a future re-simulation.
func (c *Cache) Put(key string, v any) error {
	if c == nil {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("runner: cache encode: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("runner: cache temp: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache close: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runner: cache rename: %w", err)
	}
	return nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}
