package runner

import (
	"math/bits"
	"testing"
)

// TestSeedNoCollisions is the regression test for the seed-collision
// hazard the additive schemes had: across the full Figure 7 grid (4
// benches x 2 profiles x 3 managers x 4 core counts x 10 runs = 960
// cells), the full Figure 8 grid, and a second experiment sharing the
// same base seed, every derived seed must be distinct.
func TestSeedNoCollisions(t *testing.T) {
	plans := []Plan{
		fig7Grid(),
		grid("fig8", []string{"HPCCG", "miniFE", "LAMMPS"}, []string{"C", "D"},
			[]string{"hpmmap", "thp"}, []int{4, 8, 16, 32}, 10),
		grid("fig7b", []string{"HPCCG", "CoMD", "miniMD", "miniFE"}, []string{"A", "B"},
			[]string{"hpmmap", "thp", "hugetlbfs"}, []int{1, 2, 4, 8}, 10),
	}
	seen := map[uint64]Cell{}
	n := 0
	for _, p := range plans {
		for _, c := range p.Cells {
			s := c.Seed(0x7e57)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: %s and %s both derive %016x", prev, c, s)
			}
			seen[s] = c
			n++
		}
	}
	if n != 960+480+960 {
		t.Fatalf("grid sizes wrong: %d cells", n)
	}
}

// TestAdditiveSchemeCollides documents why the old derivation had to go:
// base + i*17 across one axis collides with base + j*17 across another as
// soon as indices overlap, and cross-dimension sums alias freely.
func TestAdditiveSchemeCollides(t *testing.T) {
	base := uint64(0x7e57)
	old := func(prof, run uint64) uint64 { return base + prof*17 + run*34 }
	if old(2, 0) != old(0, 1) {
		t.Fatal("expected the additive scheme to collide (prof=2 vs run=1)")
	}
	// The coordinate-hashed derivation separates the same two cells.
	a := Cell{Exp: "faultstudy", Profile: "B", Run: 0}.Seed(base)
	b := Cell{Exp: "faultstudy", Profile: "none", Run: 1}.Seed(base)
	if a == b {
		t.Fatal("coordinate-hashed seeds collided")
	}
}

// TestSeedSensitivity: flipping any single coordinate, the base seed, or
// swapping adjacent string fields must change the seed.
func TestSeedSensitivity(t *testing.T) {
	ref := Cell{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4, Run: 2}
	base := uint64(42)
	s0 := ref.Seed(base)
	if ref.Seed(base) != s0 {
		t.Fatal("seed not deterministic")
	}
	variants := []Cell{
		{Exp: "fig8", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4, Run: 2},
		{Exp: "fig7", Bench: "CoMD", Profile: "A", Manager: "thp", Cores: 4, Run: 2},
		{Exp: "fig7", Bench: "HPCCG", Profile: "B", Manager: "thp", Cores: 4, Run: 2},
		{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "hpmmap", Cores: 4, Run: 2},
		{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 8, Run: 2},
		{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4, Run: 3},
		{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Variant: "x", Cores: 4, Run: 2},
		// Field transposition must not alias.
		{Exp: "fig7", Bench: "A", Profile: "HPCCG", Manager: "thp", Cores: 4, Run: 2},
	}
	for _, v := range variants {
		if v.Seed(base) == s0 {
			t.Fatalf("coordinate change did not change seed: %+v", v)
		}
	}
	if ref.Seed(base+1) == s0 {
		t.Fatal("base seed change did not change cell seed")
	}
}

// TestSeedAvalanche: derived seeds should look random — neighbouring run
// indices must differ in roughly half their bits, since they feed
// sim.NewRand directly.
func TestSeedAvalanche(t *testing.T) {
	c := Cell{Exp: "fig7", Bench: "HPCCG", Profile: "A", Manager: "thp", Cores: 4}
	var totalDist int
	const pairs = 256
	prev := c.Seed(1)
	for r := 1; r <= pairs; r++ {
		c.Run = r
		s := c.Seed(1)
		totalDist += bits.OnesCount64(prev ^ s)
		prev = s
	}
	mean := float64(totalDist) / pairs
	if mean < 24 || mean > 40 {
		t.Fatalf("mean hamming distance %.1f bits, want ~32", mean)
	}
}
