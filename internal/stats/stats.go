// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming mean/stdev accumulators, percentiles, and
// formatted summaries over repeated runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Stdev returns the population standard deviation.
func (s *Sample) Stdev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// Min returns the smallest observation (0 when empty).
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if p <= 0 {
		return xs[0]
	}
	if p >= 100 {
		return xs[len(xs)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	return xs[rank]
}

// CV returns the coefficient of variation (stdev/mean), the variance
// metric the paper's error bars communicate.
func (s *Sample) CV() float64 {
	m := s.Mean()
	if m == 0 {
		return 0
	}
	return s.Stdev() / m
}

// String renders "mean ± stdev (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.Stdev(), s.N())
}

// RelativeImprovement returns how much faster a is than b, as a fraction
// of b: (b-a)/b. Positive means a wins.
func RelativeImprovement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (b - a) / b
}

// Welch performs Welch's unequal-variance t-test between two samples and
// returns the t statistic and approximate degrees of freedom
// (Welch–Satterthwaite). The experiment reports use it to state whether a
// manager comparison is resolved above run-to-run noise.
func Welch(a, b *Sample) (t, df float64) {
	na, nb := float64(a.N()), float64(b.N())
	if na < 2 || nb < 2 {
		return 0, 0
	}
	va := a.Stdev() * a.Stdev() * na / (na - 1) // sample variance
	vb := b.Stdev() * b.Stdev() * nb / (nb - 1)
	sa, sb := va/na, vb/nb
	denom := math.Sqrt(sa + sb)
	if denom == 0 {
		return 0, 0
	}
	t = (a.Mean() - b.Mean()) / denom
	dfDenom := sa*sa/(na-1) + sb*sb/(nb-1)
	if dfDenom == 0 {
		return t, na + nb - 2
	}
	df = (sa + sb) * (sa + sb) / dfDenom
	return t, df
}

// Significant reports whether the two samples' means differ at roughly
// the 99% level (|t| above the t-distribution's 0.005 tail for the given
// degrees of freedom, conservatively approximated).
func Significant(a, b *Sample) bool {
	t, df := Welch(a, b)
	if df <= 0 {
		return false
	}
	// Conservative critical values for alpha=0.01 two-sided.
	crit := 3.5
	switch {
	case df >= 30:
		crit = 2.75
	case df >= 10:
		crit = 3.17
	}
	return math.Abs(t) > crit
}
