package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Stdev() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty sample not all zero")
	}
	if s.N() != 0 {
		t.Fatal("empty N")
	}
}

func TestMoments(t *testing.T) {
	var s Sample
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Mean() != 5 {
		t.Fatalf("mean %v", s.Mean())
	}
	if s.Stdev() != 2 {
		t.Fatalf("stdev %v", s.Stdev())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max %v/%v", s.Min(), s.Max())
	}
	if s.CV() != 0.4 {
		t.Fatalf("cv %v", s.CV())
	}
	if s.N() != 8 {
		t.Fatalf("n %d", s.N())
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Stdev() != 0 {
		t.Fatal("stdev of one point")
	}
	if s.Mean() != 3 || s.Percentile(99) != 3 {
		t.Fatal("single-point stats")
	}
}

func TestPercentiles(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if p := s.Percentile(50); p != 50 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(95); p != 95 {
		t.Fatalf("p95 = %v", p)
	}
	if p := s.Percentile(0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := s.Percentile(100); p != 100 {
		t.Fatalf("p100 = %v", p)
	}
	// Percentile must not mutate the sample order's semantics.
	if s.Min() != 1 || s.Max() != 100 {
		t.Fatal("percentile corrupted sample")
	}
}

func TestPercentileWithinRangeProperty(t *testing.T) {
	check := func(vals []float64, p float64) bool {
		var s Sample
		ok := false
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				s.Add(v)
				ok = true
			}
		}
		if !ok {
			return true
		}
		q := math.Mod(math.Abs(p), 100)
		got := s.Percentile(q)
		return got >= s.Min() && got <= s.Max()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeImprovement(t *testing.T) {
	if got := RelativeImprovement(80, 100); got != 0.2 {
		t.Fatalf("improvement %v", got)
	}
	if got := RelativeImprovement(100, 80); got != -0.25 {
		t.Fatalf("regression %v", got)
	}
	if got := RelativeImprovement(1, 0); got != 0 {
		t.Fatalf("div-by-zero guard %v", got)
	}
}

func TestCVZeroMean(t *testing.T) {
	var s Sample
	s.Add(0)
	s.Add(0)
	if s.CV() != 0 {
		t.Fatal("CV with zero mean")
	}
}

func TestString(t *testing.T) {
	var s Sample
	s.Add(1)
	s.Add(3)
	if got := s.String(); got != "2.00 ± 1.00 (n=2)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestWelch(t *testing.T) {
	var a, b Sample
	for i := 0; i < 10; i++ {
		a.Add(100 + float64(i%3))
		b.Add(120 + float64(i%3))
	}
	tv, df := Welch(&a, &b)
	if tv >= 0 {
		t.Fatalf("t = %v, want negative (a < b)", tv)
	}
	if df <= 0 {
		t.Fatalf("df = %v", df)
	}
	if !Significant(&a, &b) {
		t.Fatal("20%% gap with tiny variance not significant")
	}
	// Identical distributions: not significant.
	var c, d Sample
	for i := 0; i < 10; i++ {
		c.Add(100 + float64(i%5))
		d.Add(100 + float64((i+2)%5))
	}
	if Significant(&c, &d) {
		t.Fatal("same-mean samples reported significant")
	}
	// Degenerate sizes.
	var e Sample
	e.Add(1)
	if tv, df := Welch(&e, &a); tv != 0 || df != 0 {
		t.Fatal("single-observation sample should yield zeros")
	}
	if Significant(&e, &a) {
		t.Fatal("undersized sample reported significant")
	}
}
